package transport

import (
	"encoding/binary"
	"math"
	"math/bits"

	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Hand-rolled binary codec for the exchange frames. Where the gob codec
// pays reflection and per-session type descriptors, this one writes the
// request/response structs field by field into a buffer the session reuses
// across messages: fixed-width timestamps and checksums, varints for
// counts and clock values, length-prefixed keys and values. A steady-state
// in-sync exchange encodes and decodes without allocating.
//
// The codec is negotiated per connection (see the handshake in frame.go):
// a session is either gob (codecGob) or binary (codecBinary) for its whole
// life, so the two framings never mix on one stream.

// Codec version bytes carried in the connection handshake. Higher is
// preferred; negotiation picks min(client preference, server ceiling).
const (
	codecGob          = 1 // encoding/gob payloads (the PR 3 wire format)
	codecBinary       = 2 // this file's hand-rolled payloads
	codecBinaryDigest = 3 // binary payloads + trailing cluster-digest section
	codecBinaryShard  = 4 // v3 + trailing shard-vector section and shard-scoped peel requests
	codecBinaryMail   = 5 // v4 + batched mail requests and their trailing telemetry section
)

// codecName names a negotiated codec for logs, flags, and metric labels.
// All binary versions report "binary": v3/v4/v5 are the same framing plus
// trailing sections, and the metrics only distinguish gob from binary.
func codecName(c byte) string {
	switch c {
	case codecGob:
		return "gob"
	case codecBinary, codecBinaryDigest, codecBinaryShard, codecBinaryMail:
		return "binary"
	default:
		return "unknown"
	}
}

// codecHasDigests reports whether frames of codec c carry the trailing
// cluster-digest section; codecHasShards whether they additionally carry
// the shard-vector section; codecHasMail whether requests additionally
// carry the mail-batch telemetry section (and the session may ship
// reqMailBatch frames). Session-level properties fixed by the handshake,
// never guessed from a payload.
func codecHasDigests(c byte) bool { return c >= codecBinaryDigest }
func codecHasShards(c byte) bool  { return c >= codecBinaryShard }
func codecHasMail(c byte) bool    { return c >= codecBinaryMail }

// stampWireLen is the fixed wire size of one timestamp.T: 8-byte Time,
// 4-byte Site, 4-byte Seq, all big-endian.
const stampWireLen = 16

// --- append-style encoders ---

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendVarint zigzag-encodes a signed value.
func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendStamp(b []byte, t timestamp.T) []byte {
	b = appendUint64(b, uint64(t.Time))
	b = appendUint32(b, uint32(t.Site))
	return appendUint32(b, t.Seq)
}

func appendEntries(b []byte, entries []store.Entry) []byte {
	b = appendUvarint(b, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		b = appendUvarint(b, uint64(len(e.Key)))
		b = append(b, e.Key...)
		if e.Value == nil {
			// The distinguished NIL of a death certificate, kept distinct
			// from a present-but-empty value.
			b = appendUvarint(b, 0)
		} else {
			b = appendUvarint(b, uint64(len(e.Value))+1)
			b = append(b, e.Value...)
		}
		b = appendStamp(b, e.Stamp)
		b = appendStamp(b, e.Activation)
		b = appendUvarint(b, uint64(len(e.Retention)))
		for _, s := range e.Retention {
			b = appendUint32(b, uint32(s))
		}
	}
	return b
}

func appendHops(b []byte, hops []trace.Hop) []byte {
	b = appendUvarint(b, uint64(len(hops)))
	for _, h := range hops {
		b = appendUint32(b, uint32(h.Parent))
		b = appendUint32(b, uint32(h.Count))
		b = append(b, boolByte(h.Valid))
	}
	return b
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// appendFloat64 writes the IEEE-754 bits big-endian.
func appendFloat64(b []byte, v float64) []byte {
	return appendUint64(b, math.Float64bits(v))
}

// appendSummary writes one LatencySummary: count, then the two quantiles
// as fixed-width float bits.
func appendSummary(b []byte, s *cluster.LatencySummary) []byte {
	b = appendUvarint(b, s.Count)
	b = appendFloat64(b, s.P50)
	return appendFloat64(b, s.P99)
}

// appendDigests writes the optional trailing cluster-digest section of a
// codecBinaryDigest frame: a count then each digest field by field. A nil
// or empty slice costs one zero byte — disabled digests are (nearly) free.
// Field order matches (*wireReader).digests; fields are only appended,
// never reordered, so the section stays decodable across versions.
func appendDigests(b []byte, digests []cluster.Digest) []byte {
	b = appendUvarint(b, uint64(len(digests)))
	for i := range digests {
		d := &digests[i]
		b = appendUint32(b, uint32(d.Site))
		b = appendVarint(b, d.Stamp)
		b = appendVarint(b, d.StartedAt)
		b = appendVarint(b, d.StoreKeys)
		b = appendUint64(b, d.Checksum)
		b = appendVarint(b, d.HotRumors)
		b = appendVarint(b, d.Peers)
		b = appendVarint(b, d.Members)
		b = appendVarint(b, d.AERuns)
		b = appendVarint(b, d.RumorRuns)
		b = appendVarint(b, d.WireMsgsBinary)
		b = appendVarint(b, d.WireMsgsGob)
		b = appendVarint(b, d.UDPPushes)
		b = appendVarint(b, d.UDPFallbacks)
		b = appendFloat64(b, d.Residue)
		b = appendFloat64(b, d.TLastSeconds)
		b = appendVarint(b, d.LastAE)
		b = appendSummary(b, &d.AntiEntropy)
		b = appendSummary(b, &d.Rumor)
	}
	return b
}

// appendVector writes a shard-vector section payload: a count then each
// per-shard checksum as fixed 8 bytes. A nil or empty vector costs one
// zero byte, so non-shard-vector requests on a v4 session stay cheap.
func appendVector(b []byte, vec []uint64) []byte {
	b = appendUvarint(b, uint64(len(vec)))
	for _, v := range vec {
		b = appendUint64(b, v)
	}
	return b
}

// appendRequest encodes req after b for the given session codec. Field
// order matches decodeRequest. codecBinaryDigest sessions append the
// cluster-digest section, codecBinaryShard additionally the shard section
// (an older peer would read either as trailing garbage, hence the
// handshake gate).
func appendRequest(b []byte, req *request, codec byte) []byte {
	b = append(b, byte(req.Kind))
	b = appendUint32(b, uint32(req.From))
	b = appendUint64(b, req.Checksum)
	b = appendVarint(b, req.Now)
	b = appendVarint(b, req.Tau)
	b = appendVarint(b, req.Tau1)
	b = appendStamp(b, req.Bound)
	b = appendVarint(b, int64(req.Limit))
	b = appendEntries(b, req.Entries)
	b = appendHops(b, req.Hops)
	if codecHasDigests(codec) {
		b = appendDigests(b, req.Digests)
	}
	if codecHasShards(codec) {
		b = appendVarint(b, int64(req.Shard))
		b = appendVarint(b, int64(req.ShardCount))
		b = appendVector(b, req.Vector)
	}
	if codecHasMail(codec) {
		// Mail-batch telemetry: two varints on every request (zero outside
		// reqMailBatch, so non-mail traffic pays two bytes). Responses gain
		// no v5 section.
		b = appendVarint(b, req.MailQueuedNanos)
		b = appendVarint(b, req.MailCoalesced)
	}
	return b
}

// Response flag bits.
const (
	respInSync = 1 << 0
	respMore   = 1 << 1
)

// appendResponse encodes resp after b for the given session codec. Field
// order matches decodeResponse; optional trailing sections as in
// appendRequest.
func appendResponse(b []byte, resp *response, codec byte) []byte {
	var flags byte
	if resp.InSync {
		flags |= respInSync
	}
	if resp.More {
		flags |= respMore
	}
	b = append(b, flags)
	b = appendUint64(b, resp.Checksum)
	b = appendVarint(b, resp.Now)
	b = appendStamp(b, resp.Bound)
	// Needed is a packed bitset: length then ceil(n/8) bytes, LSB first.
	b = appendUvarint(b, uint64(len(resp.Needed)))
	var acc, n byte
	for _, need := range resp.Needed {
		if need {
			acc |= 1 << n
		}
		if n++; n == 8 {
			b = append(b, acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		b = append(b, acc)
	}
	b = appendEntries(b, resp.Entries)
	b = appendHops(b, resp.Hops)
	b = appendUvarint(b, uint64(len(resp.Err)))
	b = append(b, resp.Err...)
	if codecHasDigests(codec) {
		b = appendDigests(b, resp.Digests)
	}
	if codecHasShards(codec) {
		b = appendVarint(b, int64(resp.ShardCount))
		b = appendVector(b, resp.Vector)
	}
	return b
}

// --- cursor-style decoder ---

// wireReader walks one frame payload. The first malformed read latches an
// error; subsequent reads are no-ops returning zero values, so decoders
// can run straight-line and check err once.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *wireReader) remaining() int { return len(r.buf) - r.pos }

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(ErrTruncatedFrame)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncatedFrame) // buffer ended mid-varint
		} else {
			r.fail(ErrFrameGarbage) // > 64 bits: not a value we ever wrote
		}
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncatedFrame)
		} else {
			r.fail(ErrFrameGarbage)
		}
		return 0
	}
	r.pos += n
	return v
}

// take returns the next n payload bytes without copying; the caller must
// copy anything that outlives the frame.
func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail(ErrTruncatedFrame)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *wireReader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) stamp() timestamp.T {
	return timestamp.T{
		Time: int64(r.uint64()),
		Site: timestamp.SiteID(r.uint32()),
		Seq:  r.uint32(),
	}
}

// count reads a collection length and sanity-checks it against the bytes
// actually left in the frame (each element costs at least minBytes), so a
// forged length can never drive a large allocation.
func (r *wireReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()/max(minBytes, 1)) {
		r.fail(ErrTruncatedFrame)
		return 0
	}
	return int(v)
}

// Minimum encoded sizes, used to bound collection counts before
// allocating.
const (
	entryMinWire = 2*stampWireLen + 3 // key len + value len + stamps + retention len
	hopWireLen   = 9
	// digestMinWire: 4-byte site + 8-byte checksum + two 8-byte floats +
	// 13 varints of at least one byte + two 17-byte summaries.
	digestMinWire = 4 + 8 + 16 + 13 + 2*17
)

func (r *wireReader) entries() []store.Entry {
	n := r.count(entryMinWire)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]store.Entry, n)
	for i := range out {
		e := &out[i]
		e.Key = string(r.take(int(r.uvarint())))
		vlen := r.uvarint()
		if vlen > 0 {
			// Copy: the frame payload buffer is reused by the session.
			v := r.take(int(vlen) - 1)
			if r.err == nil {
				e.Value = append(store.Value(nil), v...)
				if e.Value == nil {
					e.Value = store.Value{} // non-nil empty stays non-nil
				}
			}
		}
		e.Stamp = r.stamp()
		e.Activation = r.stamp()
		if nr := r.count(4); nr > 0 {
			e.Retention = make([]timestamp.SiteID, nr)
			for j := range e.Retention {
				e.Retention[j] = timestamp.SiteID(r.uint32())
			}
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *wireReader) hops() []trace.Hop {
	n := r.count(hopWireLen)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]trace.Hop, n)
	for i := range out {
		out[i] = trace.Hop{
			Parent: timestamp.SiteID(r.uint32()),
			Count:  int32(r.uint32()),
			Valid:  r.byte() != 0,
		}
	}
	return out
}

// vector reads a shard-vector section: a count (sanity-checked against
// the remaining bytes at 8 bytes per element, so a forged length never
// drives a large allocation) then that many fixed-width checksums.
func (r *wireReader) vector() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.uint64()
	}
	return out
}

func (r *wireReader) float64() float64 {
	return math.Float64frombits(r.uint64())
}

func (r *wireReader) summary() cluster.LatencySummary {
	return cluster.LatencySummary{
		Count: r.uvarint(),
		P50:   r.float64(),
		P99:   r.float64(),
	}
}

func (r *wireReader) digests() []cluster.Digest {
	n := r.count(digestMinWire)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]cluster.Digest, n)
	for i := range out {
		d := &out[i]
		d.Site = int32(r.uint32())
		d.Stamp = r.varint()
		d.StartedAt = r.varint()
		d.StoreKeys = r.varint()
		d.Checksum = r.uint64()
		d.HotRumors = r.varint()
		d.Peers = r.varint()
		d.Members = r.varint()
		d.AERuns = r.varint()
		d.RumorRuns = r.varint()
		d.WireMsgsBinary = r.varint()
		d.WireMsgsGob = r.varint()
		d.UDPPushes = r.varint()
		d.UDPFallbacks = r.varint()
		d.Residue = r.float64()
		d.TLastSeconds = r.float64()
		d.LastAE = r.varint()
		d.AntiEntropy = r.summary()
		d.Rumor = r.summary()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// finish reports the terminal decode state: a latched error, trailing
// garbage, or success.
func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return ErrFrameGarbage
	}
	return nil
}

// decodeRequest decodes one binary frame payload into req, overwriting
// every field (so a reused struct never leaks state between messages).
// codec must match the encoder's — it is a session-level property fixed by
// the handshake, never guessed from the payload.
func decodeRequest(payload []byte, req *request, codec byte) error {
	r := wireReader{buf: payload}
	req.Kind = reqKind(r.byte())
	req.From = timestamp.SiteID(r.uint32())
	req.Checksum = r.uint64()
	req.Now = r.varint()
	req.Tau = r.varint()
	req.Tau1 = r.varint()
	req.Bound = r.stamp()
	req.Limit = int(r.varint())
	req.Entries = r.entries()
	req.Hops = r.hops()
	req.Digests = nil
	if codecHasDigests(codec) {
		req.Digests = r.digests()
	}
	req.Shard, req.ShardCount, req.Vector = 0, 0, nil
	if codecHasShards(codec) {
		req.Shard = int(r.varint())
		req.ShardCount = int(r.varint())
		req.Vector = r.vector()
	}
	req.MailQueuedNanos, req.MailCoalesced = 0, 0
	if codecHasMail(codec) {
		req.MailQueuedNanos = r.varint()
		req.MailCoalesced = r.varint()
	}
	return r.finish()
}

// decodeResponse decodes one binary frame payload into resp, overwriting
// every field.
func decodeResponse(payload []byte, resp *response, codec byte) error {
	r := wireReader{buf: payload}
	flags := r.byte()
	resp.InSync = flags&respInSync != 0
	resp.More = flags&respMore != 0
	resp.Checksum = r.uint64()
	resp.Now = r.varint()
	resp.Bound = r.stamp()
	// Needed packs 8 bools per byte, so its count check is its own.
	nNeeded := int(r.uvarint())
	if r.err == nil && (nNeeded < 0 || nNeeded > 8*r.remaining()) {
		r.fail(ErrTruncatedFrame)
	}
	resp.Needed = nil
	if r.err == nil && nNeeded > 0 {
		packed := r.take((nNeeded + 7) / 8)
		if r.err == nil {
			resp.Needed = make([]bool, nNeeded)
			for i := range resp.Needed {
				resp.Needed[i] = packed[i/8]&(1<<(i%8)) != 0
			}
		}
	}
	resp.Entries = r.entries()
	resp.Hops = r.hops()
	errLen := r.uvarint()
	resp.Err = string(r.take(int(errLen)))
	resp.Digests = nil
	if codecHasDigests(codec) {
		resp.Digests = r.digests()
	}
	resp.ShardCount, resp.Vector = 0, nil
	if codecHasShards(codec) {
		resp.ShardCount = int(r.varint())
		resp.Vector = r.vector()
	}
	return r.finish()
}

// requestWireSize returns an upper bound on appendRequest's output for
// req — the UDP fast path uses it to decide whether a push fits in one
// datagram without encoding twice.
func requestWireSize(req *request) int {
	n := 1 + 4 + 8 + 3*binary.MaxVarintLen64 + stampWireLen + binary.MaxVarintLen64
	n += uvarintLen(uint64(len(req.Entries)))
	for i := range req.Entries {
		e := &req.Entries[i]
		n += uvarintLen(uint64(len(e.Key))) + len(e.Key)
		n += uvarintLen(uint64(len(e.Value))+1) + len(e.Value)
		n += 2 * stampWireLen
		n += uvarintLen(uint64(len(e.Retention))) + 4*len(e.Retention)
	}
	n += uvarintLen(uint64(len(req.Hops))) + hopWireLen*len(req.Hops)
	return n
}

func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}
