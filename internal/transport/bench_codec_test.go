package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// benchResponse builds a representative anti-entropy reply: a peel batch of
// entries entries with provenance hops and a needed bitmap, the shape the
// codec encodes on every conversation of a diverged pair.
func benchResponse(entries int) *response {
	resp := &response{
		Checksum: 0xfeedfacecafebeef,
		Now:      1 << 40,
		Bound:    timestamp.T{Time: 1<<40 - 512, Site: 3, Seq: 77},
		Needed:   make([]bool, entries),
	}
	for i := 0; i < entries; i++ {
		resp.Entries = append(resp.Entries, store.Entry{
			Key:   fmt.Sprintf("user/profile/%04d", i),
			Value: store.Value("MV:1.17#42 replicated-value-payload"),
			Stamp: timestamp.T{Time: int64(1<<40 - i), Site: timestamp.SiteID(i%5 + 1), Seq: uint32(i)},
		})
		resp.Hops = append(resp.Hops, trace.Hop{
			Parent: timestamp.SiteID(i%5 + 1), Count: int32(i % 7), Valid: true,
		})
		resp.Needed[i] = i%3 != 0
	}
	return resp
}

// BenchmarkCodecEncode measures one response encode: the binary codec
// appending into a reused buffer vs a persistent gob encoder writing into a
// reset buffer (type descriptors already shipped — the pooled-session
// steady state for both).
func BenchmarkCodecEncode(b *testing.B) {
	resp := benchResponse(16)
	b.Run("binary", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendResponse(buf[:0], resp, codecBinary)
		}
		b.ReportMetric(float64(len(buf)), "wire_bytes")
	})
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(resp); err != nil { // ship type descriptors
			b.Fatal(err)
		}
		first := buf.Len()
		b.ReportAllocs()
		b.ResetTimer()
		var n int
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(resp); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		_ = first
		b.ReportMetric(float64(n), "wire_bytes")
	})
}

// BenchmarkCodecRoundTrip measures encode+decode of the same response: the
// full serialization cost one framed message pays on the wire, with
// persistent encoder/decoder state on both sides.
func BenchmarkCodecRoundTrip(b *testing.B) {
	resp := benchResponse(16)
	b.Run("binary", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		var out response
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendResponse(buf[:0], resp, codecBinary)
			if err := decodeResponse(buf, &out, codecBinary); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		var out response
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(resp); err != nil {
				b.Fatal(err)
			}
			out = response{}
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
