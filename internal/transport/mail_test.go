package transport

import (
	"errors"
	"testing"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

func TestMemoryMailPostDrain(t *testing.T) {
	m := NewMemoryMail(0, 0, 1)
	msg := Message{From: 1, To: 2, Entry: store.Entry{Key: "k"}}
	if err := m.Post(msg); err != nil {
		t.Fatal(err)
	}
	if m.QueueLen(2) != 1 {
		t.Fatalf("QueueLen = %d", m.QueueLen(2))
	}
	got := m.Drain(2)
	if len(got) != 1 || got[0].Entry.Key != "k" {
		t.Fatalf("Drain = %v", got)
	}
	if m.QueueLen(2) != 0 {
		t.Fatal("queue not drained")
	}
	if len(m.Drain(2)) != 0 {
		t.Fatal("second drain not empty")
	}
	posted, dropped, delivered := m.Stats()
	if posted != 1 || dropped != 0 || delivered != 1 {
		t.Errorf("Stats = %d %d %d", posted, dropped, delivered)
	}
}

func TestMemoryMailQueueOverflow(t *testing.T) {
	m := NewMemoryMail(2, 0, 1)
	for i := 0; i < 2; i++ {
		if err := m.Post(Message{To: 5}); err != nil {
			t.Fatal(err)
		}
	}
	err := m.Post(Message{To: 5})
	if !errors.Is(err, ErrQueueOverflow) {
		t.Fatalf("err = %v, want ErrQueueOverflow", err)
	}
	_, dropped, _ := m.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	// Other destinations unaffected.
	if err := m.Post(Message{To: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryMailLoss(t *testing.T) {
	m := NewMemoryMail(0, 1 /* drop everything */, 1)
	if err := m.Post(Message{To: 3}); err != nil {
		t.Fatalf("loss must be silent, got %v", err)
	}
	if m.QueueLen(3) != 0 {
		t.Fatal("lost message queued anyway")
	}
	_, dropped, _ := m.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestSiteMailer(t *testing.T) {
	m := NewMemoryMail(0, 0, 1)
	mailer := SiteMailer{Mail: m, From: 7}
	if err := mailer.PostMail(9, store.Entry{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	got := m.Drain(9)
	if len(got) != 1 || got[0].From != timestamp.SiteID(7) {
		t.Fatalf("Drain = %+v", got)
	}
}
