package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// tcpPair starts two nodes with TCP servers and wires them as peers.
func tcpPair(t *testing.T) (*node.Node, *node.Node) {
	t.Helper()
	src := timestamp.NewSimulated(1 << 30)
	mk := func(site timestamp.SiteID) (*node.Node, *Server) {
		n, err := node.New(node.Config{
			Site:  site,
			Clock: src.ClockAt(site),
			Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
			Resolve: core.ResolveConfig{
				Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40,
			},
			Seed: int64(site),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		return n, srv
	}
	a, sa := mk(1)
	b, sb := mk(2)
	a.SetPeers([]node.Peer{NewTCPPeer(2, sb.Addr())})
	b.SetPeers([]node.Peer{NewTCPPeer(1, sa.Addr())})
	return a, b
}

func TestTCPPeerID(t *testing.T) {
	p := NewTCPPeer(9, "127.0.0.1:1")
	if p.ID() != 9 || p.Addr() != "127.0.0.1:1" {
		t.Errorf("peer = %v %v", p.ID(), p.Addr())
	}
}

func TestTCPMail(t *testing.T) {
	a, b := tcpPair(t)
	e := a.Update("k", store.Value("v"))
	if err := a.Peers()[0].Mail(e, trace.Hop{}); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("Lookup = %q %v", v, ok)
	}
}

func TestTCPRumorPushAndPull(t *testing.T) {
	a, b := tcpPair(t)
	a.Update("k", store.Value("v"))
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("k"); !ok {
		t.Fatal("push rumor over TCP failed")
	}
	// Pull direction: update at b, a pulls via its push-pull step.
	b.Update("k2", store.Value("v2"))
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("k2"); !ok {
		t.Fatal("pull rumor over TCP failed")
	}
}

func TestTCPAntiEntropyInSync(t *testing.T) {
	a, b := tcpPair(t)
	e := a.Update("k", store.Value("v"))
	b.Store().Apply(e)
	st, err := a.Peers()[0].AntiEntropy(core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40,
	}, a.Store(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullCompare {
		t.Errorf("in-sync stores should not full-compare: %+v", st)
	}
}

func TestTCPAntiEntropyRepairsBothDirections(t *testing.T) {
	a, b := tcpPair(t)
	a.Update("mine", store.Value("1"))
	b.Update("theirs", store.Value("2"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("replicas differ after TCP anti-entropy")
	}
}

func TestTCPAntiEntropyPeelBackAvoidsFullSwap(t *testing.T) {
	a, b := tcpPair(t)
	// Old divergence outside any recent window: the wire protocol must
	// repair it by peeling back, never by swapping full databases.
	a.Store().Update("old", store.Value("x"))
	st, err := a.Peers()[0].AntiEntropy(core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 0,
	}, a.Store(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullCompare {
		t.Errorf("peel-back should have repaired without a full swap: %+v", st)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("replicas differ after peel-back")
	}
}

func TestTCPAntiEntropyFullSwapLastResort(t *testing.T) {
	a, b := tcpPair(t)
	// More divergence than one peel round can move (batch 4, one round
	// each way) forces the capped full-swap fallback.
	for i := 0; i < 50; i++ {
		a.Store().Update(fmt.Sprintf("only-a-%02d", i), store.Value("x"))
	}
	// DisableShardVector pins the conversation to the global walk: this
	// test is about the global path's capped last resort.
	peer := NewTCPPeerWith(2, a.Peers()[0].(*TCPPeer).Addr(),
		PeerOptions{MaxPeelRounds: 1, DisableShardVector: true})
	defer peer.Close()
	st, err := peer.AntiEntropy(core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 0, BatchSize: 4,
	}, a.Store(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullCompare {
		t.Errorf("expected full-swap last resort: %+v", st)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("replicas differ after full swap")
	}
}

func TestTCPPeerUnreachable(t *testing.T) {
	a, _ := tcpPair(t)
	// Nothing listens here; a short timeout keeps the test fast.
	dead := NewTCPPeerWith(3, "127.0.0.1:1", PeerOptions{Timeout: 200 * time.Millisecond})
	if err := dead.Mail(store.Entry{Key: "k"}, trace.Hop{}); err == nil {
		t.Error("mail to dead peer succeeded")
	}
	if _, _, err := dead.PullRumors(); err == nil {
		t.Error("pull from dead peer succeeded")
	}
	if _, err := dead.AntiEntropy(core.ResolveConfig{Mode: core.PushPull, Strategy: core.CompareRecent}, a.Store(), nil); err == nil {
		t.Error("anti-entropy with dead peer succeeded")
	}
}

func TestServerCloseIdempotentAccepts(t *testing.T) {
	n, err := node.New(node.Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == "" {
		t.Error("no address")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestTCPClusterConvergence(t *testing.T) {
	// Three nodes over real sockets; drive steps until consistent.
	src := timestamp.NewSimulated(1 << 30)
	var nodes []*node.Node
	var servers []*Server
	for site := timestamp.SiteID(1); site <= 3; site++ {
		n, err := node.New(node.Config{
			Site:    site,
			Clock:   src.ClockAt(site),
			Resolve: core.ResolveConfig{Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40},
			Seed:    int64(site),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		nodes = append(nodes, n)
		servers = append(servers, srv)
	}
	for i, n := range nodes {
		var peers []node.Peer
		for j, srv := range servers {
			if i == j {
				continue
			}
			peers = append(peers, NewTCPPeer(nodes[j].Site(), srv.Addr()))
		}
		n.SetPeers(peers)
	}
	nodes[0].Update("a", store.Value("1"))
	nodes[1].Update("b", store.Value("2"))
	nodes[2].Update("c", store.Value("3"))
	for round := 0; round < 20; round++ {
		for _, n := range nodes {
			if err := n.StepAntiEntropy(); err != nil {
				t.Fatal(err)
			}
		}
		if store.ContentEqual(nodes[0].Store(), nodes[1].Store()) &&
			store.ContentEqual(nodes[1].Store(), nodes[2].Store()) {
			return
		}
	}
	t.Fatal("TCP cluster never converged")
}

// TestTCPPeelBackShipsOrderDelta is the tentpole property: with 10 000
// shared entries and 10 differing ones, the wire conversation moves O(δ)
// entries, not the database.
func TestTCPPeelBackShipsOrderDelta(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	remote, err := node.New(node.Config{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	local := store.New(1, src.ClockAt(1))
	const shared, delta = 10_000, 10
	for i := 0; i < shared; i++ {
		e := local.Update(fmt.Sprintf("k%05d", i), store.Value("v"))
		remote.Store().Apply(e)
		src.Advance(1)
	}
	for i := 0; i < delta; i++ {
		local.Update(fmt.Sprintf("fresh%02d", i), store.Value("new"))
		src.Advance(1)
	}
	src.Advance(100) // push the divergence outside any recent window

	peer := NewTCPPeer(2, srv.Addr())
	defer peer.Close()
	st, err := peer.AntiEntropy(core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent,
		Tau: 10, Tau1: 1 << 40, BatchSize: 64,
	}, local, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullCompare {
		t.Fatalf("peel-back degraded to a full swap: %+v", st)
	}
	if !store.ContentEqual(local, remote.Store()) {
		t.Fatal("replicas differ after peel-back")
	}
	// A couple of 64-entry batches each way, nowhere near 10 000.
	if moved := st.Transferred(); moved > 6*64 {
		t.Errorf("peel-back moved %d entries for a %d-entry delta", moved, delta)
	}
}

func TestServerRejectsGarbageBytes(t *testing.T) {
	n, err := node.New(node.Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not gob")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	// The server must survive; a real request still works.
	peer := NewTCPPeer(1, srv.Addr())
	if err := peer.Mail(store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1}}, trace.Hop{}); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
	if _, ok := n.Lookup("k"); !ok {
		t.Fatal("mail after garbage not applied")
	}
}
