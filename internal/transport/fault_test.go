package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// fakeServer runs handler on every accepted connection — a peer that
// misbehaves at the byte level.
func fakeServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	return ln.Addr().String()
}

func TestClientTruncatedResponseFrame(t *testing.T) {
	// The remote promises a 100-byte payload, ships 5, and dies.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		var header [frameHeaderLen]byte
		binary.BigEndian.PutUint32(header[:], 100)
		_, _ = conn.Write(header[:])
		_, _ = conn.Write([]byte("stub!"))
	})
	// Legacy mode: no codec hello, so the byte-level fake's frames line up.
	peer := NewTCPPeerWith(7, addr, PeerOptions{Timeout: time.Second, Codec: "legacy"})
	defer peer.Close()
	_, _, err := peer.PullRumors()
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("err = %v, want ErrTruncatedFrame", err)
	}
}

func TestClientOversizeResponseFrame(t *testing.T) {
	// The remote declares a frame far beyond maxWireBytes; the client must
	// refuse before allocating a byte of payload.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		var header [frameHeaderLen]byte
		binary.BigEndian.PutUint32(header[:], 1<<31)
		_, _ = conn.Write(header[:])
		// Hold the conn open: the error must come from the limit check,
		// not a disconnect.
		time.Sleep(2 * time.Second)
	})
	peer := NewTCPPeerWith(7, addr, PeerOptions{Timeout: time.Second, Codec: "legacy"})
	defer peer.Close()
	_, _, err := peer.PullRumors()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestOutgoingFrameRespectsLimit(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	s := newSession(client, 16, codecGob) // absurdly small per-frame cap
	big := request{Kind: reqMail, Entries: []store.Entry{{Key: "k", Value: store.Value(make([]byte, 1024))}}}
	if err := s.writeMsg(&big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("writeMsg err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTrailingGarbage(t *testing.T) {
	// A frame whose payload holds a full gob value plus trailing junk means
	// the streams have diverged; readMsg must say so.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		// Encode one legitimate value, then pad the frame.
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		_ = enc.Encode(&response{Checksum: 7})
		payload := append(buf.Bytes(), 0xde, 0xad, 0xbe)
		var header [frameHeaderLen]byte
		binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
		_, _ = server.Write(header[:])
		_, _ = server.Write(payload)
	}()

	s := newSession(client, 0, codecGob)
	var resp response
	if err := s.readMsg(&resp); !errors.Is(err, ErrFrameGarbage) {
		t.Errorf("readMsg err = %v, want ErrFrameGarbage", err)
	}
}

func TestClientStalledPeerDeadline(t *testing.T) {
	// The remote accepts, swallows the request, and never answers: the
	// per-request deadline must fire.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(io.Discard, conn)
	})
	peer := NewTCPPeerWith(7, addr, PeerOptions{Timeout: 150 * time.Millisecond})
	defer peer.Close()
	start := time.Now()
	_, _, err := peer.PullRumors()
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("deadline took %v to fire", d)
	}
}

func TestServerSurvivesTruncatedAndOversizeFrames(t *testing.T) {
	n, err := node.New(node.Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Truncated: promise 100 bytes, send 4, hang up.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var header [frameHeaderLen]byte
	binary.BigEndian.PutUint32(header[:], 100)
	_, _ = conn.Write(header[:])
	_, _ = conn.Write([]byte("1234"))
	_ = conn.Close()

	// Oversize: declare a ~4 GiB frame.
	conn, err = net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(header[:], 0xffffffff)
	_, _ = conn.Write(header[:])
	// The server must cut this connection itself.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(header[:]); err == nil {
		t.Error("server kept an oversize-frame connection open")
	}
	_ = conn.Close()

	// The server still serves real traffic afterwards.
	peer := NewTCPPeer(1, srv.Addr())
	defer peer.Close()
	if err := peer.Mail(store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1}}, trace.Hop{}); err != nil {
		t.Fatalf("server wedged after fault injection: %v", err)
	}
}

func TestPoolRedialsAfterRemoteRestart(t *testing.T) {
	mkNode := func(site timestamp.SiteID) *node.Node {
		n, err := node.New(node.Config{Site: site})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	srv, err := Serve(mkNode(1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	stats := &WireStats{}
	peer := NewTCPPeerWith(1, addr, PeerOptions{Timeout: time.Second, Stats: stats})
	defer peer.Close()
	if err := peer.Mail(store.Entry{Key: "a", Value: store.Value("1"), Stamp: timestamp.T{Time: 1}}, trace.Hop{}); err != nil {
		t.Fatal(err)
	}

	// Restart the remote on the same address; the pooled session is now a
	// dead socket the peer must transparently replace.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(mkNode(1), addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	if err := peer.Mail(store.Entry{Key: "b", Value: store.Value("2"), Stamp: timestamp.T{Time: 2}}, trace.Hop{}); err != nil {
		t.Fatalf("mail through restarted remote: %v", err)
	}
	if snap := stats.Snapshot(); snap.Redials == 0 {
		t.Errorf("expected a redial, stats = %+v", snap)
	}
}

// udpBlackhole binds a UDP socket on the same port as a TCP server and
// swallows every datagram — a fast path that is reachable but silent.
func udpBlackhole(t *testing.T, addr string) {
	t.Helper()
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	uc, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = uc.Close() })
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, _, err := uc.ReadFromUDP(buf); err != nil {
				return
			}
		}
	}()
}

// TestUDPDroppedDatagramsRetryThenFallback sends pushes into a UDP
// blackhole: the client must exhaust its retries, fall back to pooled TCP,
// and still deliver the rumor.
func TestUDPDroppedDatagramsRetryThenFallback(t *testing.T) {
	n, err := node.New(node.Config{Site: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(n, "127.0.0.1:0", ServerOptions{DisableUDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	udpBlackhole(t, srv.Addr())

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
		UDP: true, UDPTimeout: 40 * time.Millisecond, UDPRetries: 2, Stats: stats,
	})
	defer peer.Close()

	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1}}
	if _, err := peer.PushRumors([]store.Entry{e}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup("k"); !ok {
		t.Fatal("rumor lost: fallback did not deliver")
	}
	snap := stats.Snapshot()
	if snap.UDPRetries != 2 {
		t.Errorf("retries = %d, want 2", snap.UDPRetries)
	}
	if snap.UDPPushes != 0 || snap.UDPFallbacks != 1 {
		t.Errorf("fallback accounting: %+v", snap)
	}
}

// TestUDPStalledSocketNeverWedgesRumorLoop keeps pushing through a silent
// fast path: every push must complete via TCP within its deadline budget,
// and after enough consecutive failures the client must stop burning a
// timeout on every push (the down/probe state).
func TestUDPStalledSocketNeverWedgesRumorLoop(t *testing.T) {
	n, err := node.New(node.Config{Site: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(n, "127.0.0.1:0", ServerOptions{DisableUDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	udpBlackhole(t, srv.Addr())

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
		UDP: true, UDPTimeout: 30 * time.Millisecond, UDPRetries: 1, Stats: stats,
	})
	defer peer.Close()

	const pushes = 10
	start := time.Now()
	for i := 0; i < pushes; i++ {
		e := store.Entry{Key: fmt.Sprintf("k%d", i), Value: store.Value("v"), Stamp: timestamp.T{Time: int64(i + 1), Site: 1}}
		if _, err := peer.PushRumors([]store.Entry{e}, nil); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Every datagram was dropped, yet all rumors arrived.
	for i := 0; i < pushes; i++ {
		if _, ok := n.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("rumor k%d lost", i)
		}
	}
	// The first udpDownThreshold pushes each wait out 2 attempts (~60ms);
	// after that the client marks the path down and falls back immediately,
	// so the loop must come in far under pushes * full-timeout.
	if d := time.Since(start); d > time.Duration(pushes)*60*time.Millisecond {
		t.Errorf("10 pushes through a stalled socket took %v — rumor loop wedged", d)
	}
	snap := stats.Snapshot()
	if snap.UDPFallbacks != pushes {
		t.Errorf("fallbacks = %d, want %d", snap.UDPFallbacks, pushes)
	}
	if snap.UDPPushes != 0 {
		t.Errorf("pushes over a blackhole = %d, want 0", snap.UDPPushes)
	}
}

// TestUDPLossyPathRecovers drops the first datagram of each push and
// answers the retry: the push must succeed over UDP, not fall back.
func TestUDPLossyPathRecovers(t *testing.T) {
	n, err := node.New(node.Config{Site: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(n, "127.0.0.1:0", ServerOptions{DisableUDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A lossy fast path: every odd datagram is dropped, every even one is
	// served by hand with the real dispatch.
	uaddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	uc, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	go func() {
		buf := make([]byte, 64<<10)
		drop := true
		for {
			nb, raddr, err := uc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if drop {
				drop = false
				continue
			}
			drop = true
			var req request
			if nb < udpHeaderLen || decodeRequest(buf[udpHeaderLen:nb], &req, codecBinary) != nil {
				continue
			}
			resp := srv.dispatch(req)
			out := append([]byte{'E', 'U', udpVersion, udpTypeResponse}, buf[4:udpHeaderLen]...)
			out = appendResponse(out, &resp, codecBinary)
			_, _ = uc.WriteToUDP(out, raddr)
		}
	}()

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
		UDP: true, UDPTimeout: 80 * time.Millisecond, UDPRetries: 2, Stats: stats,
	})
	defer peer.Close()

	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1}}
	needed, err := peer.PushRumors([]store.Entry{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(needed) != 1 || !needed[0] {
		t.Errorf("needed = %v, want [true]", needed)
	}
	if _, ok := n.Lookup("k"); !ok {
		t.Fatal("rumor not applied")
	}
	snap := stats.Snapshot()
	if snap.UDPPushes != 1 || snap.UDPRetries != 1 || snap.UDPFallbacks != 0 {
		t.Errorf("lossy-path accounting: %+v", snap)
	}
}

func TestPoolStressConcurrentExchanges(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	remote, err := node.New(node.Config{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	local := store.New(1, src.ClockAt(1))
	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{PoolSize: 2, Stats: stats})
	cfg := core.ResolveConfig{Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40, Tau1: 1 << 40}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = peer.Mail(store.Entry{
						Key:   fmt.Sprintf("g%d-%d", g, i),
						Value: store.Value("v"),
						Stamp: timestamp.T{Time: int64(g*1000 + i), Site: 1},
					}, trace.Hop{})
				case 1:
					_, _, err = peer.PullRumors()
				default:
					_, err = peer.AntiEntropy(cfg, local, nil)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := stats.Snapshot()
	if snap.Dials == 0 || snap.Reuses == 0 {
		t.Errorf("expected both dials and reuses under load: %+v", snap)
	}
	if snap.OpenConns != int64(peer.pool.openIdle()) {
		t.Errorf("open conns %d != idle pool size %d", snap.OpenConns, peer.pool.openIdle())
	}
	if err := peer.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := stats.Snapshot(); snap.OpenConns != 0 {
		t.Errorf("open conns after Close = %d, want 0", snap.OpenConns)
	}
}
