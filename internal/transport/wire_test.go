package transport

import (
	"net"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// wireNode builds a node with a clock suitable for wire tests.
func wireNode(t *testing.T, site timestamp.SiteID, src *timestamp.Simulated) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{
		Site:  site,
		Clock: src.ClockAt(site),
		Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
		Resolve: core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40,
		},
		Seed: int64(site),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCodecNegotiationMatrix drives every client codec mode against every
// server ceiling and checks which codec the handshake settles on.
func TestCodecNegotiationMatrix(t *testing.T) {
	for _, tc := range []struct {
		server, client string
		wantBinary     bool
	}{
		{"binary", "binary", true},
		{"binary", "gob", false},
		{"binary", "legacy", false},
		{"gob", "binary", false},
		{"gob", "gob", false},
		{"gob", "legacy", false},
	} {
		t.Run(tc.server+"/"+tc.client, func(t *testing.T) {
			src := timestamp.NewSimulated(1 << 30)
			n := wireNode(t, 1, src)
			srv, err := ServeWith(n, "127.0.0.1:0", ServerOptions{Codec: tc.server})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			stats := &WireStats{}
			peer := NewTCPPeerWith(1, srv.Addr(), PeerOptions{Codec: tc.client, Stats: stats})
			defer peer.Close()
			if err := peer.Mail(store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 2}}, trace.Hop{}); err != nil {
				t.Fatal(err)
			}
			if _, ok := n.Lookup("k"); !ok {
				t.Fatal("mail not applied")
			}
			snap := stats.Snapshot()
			if tc.wantBinary && (snap.SessionsBinary != 1 || snap.SessionsGob != 0 || snap.MsgsBinary == 0) {
				t.Errorf("wanted a binary session, stats = %+v", snap)
			}
			if !tc.wantBinary && (snap.SessionsGob != 1 || snap.SessionsBinary != 0 || snap.MsgsGob == 0) {
				t.Errorf("wanted a gob session, stats = %+v", snap)
			}
		})
	}
}

// TestMixedCodecNodesConverge is the rollout acceptance property: a
// binary-codec node and a gob-only node still converge through
// anti-entropy, the handshake falling back cleanly in both directions.
func TestMixedCodecNodesConverge(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	newNode := wireNode(t, 1, src) // speaks binary
	oldNode := wireNode(t, 2, src) // capped at gob, like a pre-rollout daemon

	newSrv, err := ServeWith(newNode, "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer newSrv.Close()
	oldSrv, err := ServeWith(oldNode, "127.0.0.1:0", ServerOptions{Codec: "gob"})
	if err != nil {
		t.Fatal(err)
	}
	defer oldSrv.Close()

	newStats, oldStats := &WireStats{}, &WireStats{}
	// The new node prefers binary; against the old server it must settle on
	// gob. The old node is configured legacy (no hello at all), which the
	// new server must serve as plain gob.
	newNode.SetPeers([]node.Peer{NewTCPPeerWith(2, oldSrv.Addr(), PeerOptions{Codec: "binary", Stats: newStats})})
	oldNode.SetPeers([]node.Peer{NewTCPPeerWith(1, newSrv.Addr(), PeerOptions{Codec: "legacy", Stats: oldStats})})

	newNode.Update("from-new", store.Value("1"))
	oldNode.Update("from-old", store.Value("2"))
	for round := 0; round < 20; round++ {
		if err := newNode.StepAntiEntropy(); err != nil {
			t.Fatal(err)
		}
		if err := oldNode.StepAntiEntropy(); err != nil {
			t.Fatal(err)
		}
		if store.ContentEqual(newNode.Store(), oldNode.Store()) {
			break
		}
	}
	if !store.ContentEqual(newNode.Store(), oldNode.Store()) {
		t.Fatal("mixed-codec nodes never converged")
	}
	if snap := newStats.Snapshot(); snap.SessionsBinary != 0 || snap.SessionsGob == 0 {
		t.Errorf("new->old sessions should have negotiated down to gob: %+v", snap)
	}
	if snap := oldStats.Snapshot(); snap.SessionsBinary != 0 || snap.SessionsGob == 0 {
		t.Errorf("legacy->new sessions should be gob: %+v", snap)
	}
}

// TestUDPRumorPushServed sends a small rumor push through the UDP fast
// path against a real server and checks both delivery and the feedback
// bits.
func TestUDPRumorPushServed(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 2, src)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{UDP: true, Stats: stats})
	defer peer.Close()

	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1, Seq: 1}}
	needed, err := peer.PushRumors([]store.Entry{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(needed) != 1 || !needed[0] {
		t.Errorf("first push needed = %v, want [true]", needed)
	}
	if v, ok := n.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("rumor not applied: %q %v", v, ok)
	}
	// A second push of the same entry is redundant: feedback must say so.
	needed, err = peer.PushRumors([]store.Entry{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(needed) != 1 || needed[0] {
		t.Errorf("redundant push needed = %v, want [false]", needed)
	}
	snap := stats.Snapshot()
	if snap.UDPPushes != 2 || snap.UDPFallbacks != 0 {
		t.Errorf("pushes should have used the fast path: %+v", snap)
	}
	if snap.UDPBytesSent == 0 || snap.UDPBytesReceived == 0 {
		t.Errorf("datagram traffic not accounted: %+v", snap)
	}
}

// TestUDPOversizePushFallsBack pushes a payload over the datagram budget:
// it must go TCP without ever touching the socket.
func TestUDPOversizePushFallsBack(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 2, src)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{UDP: true, Stats: stats})
	defer peer.Close()

	big := store.Entry{Key: "big", Value: store.Value(make([]byte, 4096)), Stamp: timestamp.T{Time: 1, Site: 1}}
	if _, err := peer.PushRumors([]store.Entry{big}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup("big"); !ok {
		t.Fatal("oversize rumor not applied")
	}
	snap := stats.Snapshot()
	if snap.UDPPushes != 0 || snap.UDPOversize != 1 || snap.UDPFallbacks != 1 {
		t.Errorf("oversize push accounting: %+v", snap)
	}
	if snap.UDPBytesSent != 0 {
		t.Errorf("oversize push should never hit the socket: %+v", snap)
	}
}

// TestUDPRejectsNonPushKinds checks the server answers disallowed kinds
// with an error instead of serving a multi-round protocol over datagrams.
func TestUDPRejectsNonPushKinds(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 2, src)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := dialUDP(srv.Addr(), defaultUDPBudget, time.Second, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	req := request{Kind: reqFullSync}
	var resp response
	if !c.roundTrip(&req, &resp) {
		t.Fatal("no response to disallowed kind")
	}
	if resp.Err == "" {
		t.Error("server served full-sync over UDP")
	}
}

// TestServeUDPDisabled checks DisableUDP leaves no datagram listener and
// pushes still arrive over TCP.
func TestServeUDPDisabled(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 2, src)
	srv, err := ServeWith(n, "127.0.0.1:0", ServerOptions{DisableUDP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.udp != nil {
		t.Fatal("DisableUDP still bound a UDP socket")
	}

	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
		UDP: true, UDPTimeout: 50 * time.Millisecond, UDPRetries: 1, Stats: stats,
	})
	defer peer.Close()
	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1}}
	if _, err := peer.PushRumors([]store.Entry{e}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup("k"); !ok {
		t.Fatal("push did not fall back to TCP")
	}
	if snap := stats.Snapshot(); snap.UDPPushes != 0 || snap.UDPFallbacks != 1 {
		t.Errorf("fallback accounting: %+v", snap)
	}
}

// TestUDPServerSurvivesGarbageDatagrams sprays noise at the fast-path
// socket; the server must keep serving real pushes.
func TestUDPServerSurvivesGarbageDatagrams(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 2, src)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	noisy, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{
		{},
		{'E', 'U'},
		{'E', 'U', udpVersion, udpTypeRequest}, // header only, no body
		[]byte("complete nonsense of a datagram"),
		append([]byte{'E', 'U', udpVersion, udpTypeRequest, 0, 0, 0, 0, 0, 0, 0, 1}, 0xff, 0xff, 0xff),
	} {
		if _, err := noisy.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	_ = noisy.Close()

	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{UDP: true})
	defer peer.Close()
	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1}}
	if _, err := peer.PushRumors([]store.Entry{e}, nil); err != nil {
		t.Fatalf("push after garbage: %v", err)
	}
	if _, ok := n.Lookup("k"); !ok {
		t.Fatal("rumor not applied after garbage datagrams")
	}
}
