package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Wire protocol: one gob-encoded request and one response per TCP
// connection. The anti-entropy exchange is the §1.3 recent-update-list
// scheme: the caller ships its recent updates and live checksum; the
// server applies them, returns its own recent updates, and when the
// checksums still disagree the two sides swap full (non-dormant) database
// contents.
type reqKind int

const (
	reqMail reqKind = iota + 1
	reqPushRumors
	reqPullRumors
	reqSync     // recent updates + checksum
	reqFullSync // full database exchange after checksum mismatch
	reqChecksum // live checksum probe (§1.5 combined scheme)
)

// kindName names a request kind for logs and metric labels.
func (k reqKind) kindName() string {
	switch k {
	case reqMail:
		return "mail"
	case reqPushRumors:
		return "push-rumors"
	case reqPullRumors:
		return "pull-rumors"
	case reqSync:
		return "sync"
	case reqFullSync:
		return "full-sync"
	case reqChecksum:
		return "checksum"
	default:
		return "unknown"
	}
}

type request struct {
	Kind     reqKind
	From     timestamp.SiteID
	Entries  []store.Entry
	Checksum uint64
	Now      int64
	Tau1     int64
}

type response struct {
	Needed   []bool
	Entries  []store.Entry
	InSync   bool
	Checksum uint64
	Err      string
}

// Server exposes a node.Node to remote TCPPeers.
type Server struct {
	node *node.Node
	ln   net.Listener
	wg   sync.WaitGroup
	mu   sync.Mutex
	done bool

	log      *slog.Logger
	observer func(kind string, d time.Duration)
}

// Serve starts a server for n on addr ("host:port", ":0" for an ephemeral
// port). It returns immediately; use Addr for the bound address and Close
// to stop.
func Serve(n *node.Node, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{node: n, ln: ln, log: slog.New(slog.NewTextHandler(io.Discard, nil))}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger installs a structured logger for request handling (served
// requests at Debug, decode failures at Warn). Call before traffic
// arrives; nil restores the discard logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// SetObserver installs a per-request hook (kind, handling duration) used
// to bridge transport traffic into a metrics registry. Call before traffic
// arrives.
func (s *Server) SetObserver(fn func(kind string, d time.Duration)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

func (s *Server) instruments() (*slog.Logger, func(string, time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log, s.observer
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// maxWireBytes bounds a single gob message; a misbehaving peer cannot make
// the decoder allocate without bound.
const maxWireBytes = 64 << 20

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	log, observe := s.instruments()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	var req request
	if err := gob.NewDecoder(io.LimitReader(conn, maxWireBytes)).Decode(&req); err != nil {
		log.Warn("gossip request decode failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	start := time.Now()
	resp := s.dispatch(req)
	d := time.Since(start)
	if observe != nil {
		observe(req.Kind.kindName(), d)
	}
	log.Debug("gossip request served", "kind", req.Kind.kindName(),
		"from", int(req.From), "entries", len(req.Entries), "dur", d)
	_ = gob.NewEncoder(conn).Encode(resp)
}

func (s *Server) dispatch(req request) response {
	switch req.Kind {
	case reqMail:
		for _, e := range req.Entries {
			s.node.HandleMail(e)
		}
		return response{}
	case reqPushRumors:
		return response{Needed: s.node.HandleRumors(req.Entries)}
	case reqPullRumors:
		return response{Entries: s.node.HotEntries()}
	case reqSync:
		st := s.node.Store()
		for _, e := range req.Entries {
			s.node.ApplyRepair(e)
		}
		now := st.Now()
		if req.Now > now {
			now = req.Now
		}
		if st.ChecksumLive(now, req.Tau1) == req.Checksum {
			return response{InSync: true, Entries: st.RecentUpdates(now, req.Tau1+1)}
		}
		return response{Entries: liveEntries(st, now, req.Tau1)}
	case reqFullSync:
		for _, e := range req.Entries {
			s.node.ApplyRepair(e)
		}
		return response{InSync: true}
	case reqChecksum:
		st := s.node.Store()
		return response{Checksum: st.ChecksumLive(st.Now(), req.Tau1)}
	default:
		return response{Err: fmt.Sprintf("unknown request kind %d", req.Kind)}
	}
}

// liveEntries snapshots all non-dormant entries.
func liveEntries(st *store.Store, now, tau1 int64) []store.Entry {
	snap := st.Snapshot()
	out := snap[:0]
	for _, e := range snap {
		if !store.IsDormant(e, now, tau1) {
			out = append(out, e)
		}
	}
	return out
}

// TCPPeer is a node.Peer implemented over the wire protocol above.
type TCPPeer struct {
	id      timestamp.SiteID
	addr    string
	timeout time.Duration
}

var _ node.Peer = (*TCPPeer)(nil)

// NewTCPPeer addresses a remote replica. The caller supplies the remote
// site ID (the membership list carries IDs alongside addresses).
func NewTCPPeer(id timestamp.SiteID, addr string) *TCPPeer {
	return &TCPPeer{id: id, addr: addr, timeout: 30 * time.Second}
}

// ID implements node.Peer.
func (p *TCPPeer) ID() timestamp.SiteID { return p.id }

// Addr returns the remote address.
func (p *TCPPeer) Addr() string { return p.addr }

func (p *TCPPeer) roundTrip(req request) (response, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.timeout)
	if err != nil {
		return response{}, fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(p.timeout))
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("transport: send to %s: %w", p.addr, err)
	}
	var resp response
	if err := gob.NewDecoder(io.LimitReader(conn, maxWireBytes)).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("transport: receive from %s: %w", p.addr, err)
	}
	if resp.Err != "" {
		return response{}, errors.New("transport: remote error: " + resp.Err)
	}
	return resp, nil
}

// Mail implements node.Peer.
func (p *TCPPeer) Mail(e store.Entry) error {
	_, err := p.roundTrip(request{Kind: reqMail, Entries: []store.Entry{e}})
	return err
}

// PushRumors implements node.Peer.
func (p *TCPPeer) PushRumors(entries []store.Entry) ([]bool, error) {
	resp, err := p.roundTrip(request{Kind: reqPushRumors, Entries: entries})
	if err != nil {
		return nil, err
	}
	return resp.Needed, nil
}

// PullRumors implements node.Peer.
func (p *TCPPeer) PullRumors() ([]store.Entry, error) {
	resp, err := p.roundTrip(request{Kind: reqPullRumors})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Checksum implements node.Peer.
func (p *TCPPeer) Checksum(tau1 int64) (uint64, error) {
	resp, err := p.roundTrip(request{Kind: reqChecksum, Tau1: tau1})
	if err != nil {
		return 0, err
	}
	return resp.Checksum, nil
}

// AntiEntropy implements node.Peer: the recent-update-list exchange of
// §1.3 over the wire, falling back to a full swap on checksum mismatch.
func (p *TCPPeer) AntiEntropy(cfg core.ResolveConfig, local *store.Store) (core.ExchangeStats, error) {
	var st core.ExchangeStats
	now := local.Now()
	recent := local.RecentUpdates(now, cfg.Tau)
	resp, err := p.roundTrip(request{
		Kind:     reqSync,
		From:     local.Site(),
		Entries:  recent,
		Checksum: local.ChecksumLive(now, cfg.Tau1),
		Now:      now,
		Tau1:     cfg.Tau1,
	})
	if err != nil {
		return st, err
	}
	st.EntriesSent += len(recent)
	st.ChecksumsCompared++
	for _, e := range resp.Entries {
		st.EntriesSent++
		res := local.Apply(e)
		if res.Changed() {
			st.EntriesApplied++
			st.AppliedKeys = append(st.AppliedKeys, e.Key)
			if st.AppliedBySite == nil {
				st.AppliedBySite = make(map[timestamp.SiteID][]string)
			}
			st.AppliedBySite[local.Site()] = append(st.AppliedBySite[local.Site()], e.Key)
		}
	}
	if resp.InSync {
		return st, nil
	}
	// Checksums disagreed: the server already sent its full contents;
	// ship ours back.
	st.FullCompare = true
	full := liveEntries(local, now, cfg.Tau1)
	if _, err := p.roundTrip(request{Kind: reqFullSync, From: local.Site(), Entries: full}); err != nil {
		return st, err
	}
	st.EntriesSent += len(full)
	return st, nil
}
