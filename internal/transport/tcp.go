package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Wire protocol: persistent framed sessions (see frame.go) carrying many
// request/response pairs per TCP connection. The anti-entropy exchange is
// the §1.3/§1.5 incremental scheme: the caller ships its recent updates
// and live checksum; on mismatch the two sides peel back through their
// databases in reverse-timestamp batches, re-comparing checksums after
// each batch, so a conversation ships O(δ) entries for δ differing keys.
// A full database swap survives only as a capped last resort.
type reqKind int

const (
	reqMail reqKind = iota + 1
	reqPushRumors
	reqPullRumors
	reqSync          // recent updates + checksum (round 0)
	reqFullSync      // full live-database swap (capped last resort)
	reqChecksum      // live checksum probe (§1.5 combined scheme)
	reqPeelBack      // one reverse-timestamp batch + checksum re-check (§1.3)
	reqShardVector   // per-shard live-checksum vector swap (codec v4)
	reqPeelBackShard // one shard-scoped peel batch + that shard's checksum (codec v4)
	reqMailBatch     // one outbox drain: many mail entries in one frame (codec v5)
)

// kindName names a request kind for logs and metric labels.
func (k reqKind) kindName() string {
	switch k {
	case reqMail:
		return "mail"
	case reqPushRumors:
		return "push-rumors"
	case reqPullRumors:
		return "pull-rumors"
	case reqSync:
		return "sync"
	case reqFullSync:
		return "full-sync"
	case reqChecksum:
		return "checksum"
	case reqPeelBack:
		return "peel-back"
	case reqShardVector:
		return "shard-vector"
	case reqPeelBackShard:
		return "peel-back-shard"
	case reqMailBatch:
		return "mail-batch"
	default:
		return "unknown"
	}
}

type request struct {
	Kind     reqKind
	From     timestamp.SiteID
	Entries  []store.Entry
	Checksum uint64
	Now      int64
	Tau      int64 // recent-update window (reqSync)
	Tau1     int64 // death-certificate dormancy threshold
	// Bound and Limit drive the server's side of the peel-back walk
	// (reqPeelBack): the server returns up to Limit entries strictly older
	// than Bound, newest first. The server is stateless across rounds; the
	// caller echoes back the Bound each response hands it.
	Bound timestamp.T
	Limit int
	// Hops carries one provenance envelope per entry in Entries when the
	// sender traces. nil — the common untraced case — is omitted from the
	// gob frame entirely, so disabled tracing adds zero wire bytes.
	Hops []trace.Hop
	// Digests piggybacks the sender's cluster-digest view on reqSync and
	// reqPullRumors conversations (the observatory's epidemic channel).
	// nil when the observatory is off: omitted from gob frames, one zero
	// byte on codecBinaryDigest sessions, absent entirely on v2 binary.
	Digests []cluster.Digest
	// Shard addresses one lock stripe for reqPeelBackShard; ShardCount is
	// the sender's store shard count (vector compares and shard walks are
	// only meaningful between stores with identical key→shard maps).
	// Vector carries the sender's per-shard live checksums on
	// reqShardVector. All three ride the codec-v4 trailing section (three
	// near-zero bytes when unused) or plain gob fields old receivers
	// ignore.
	Shard      int
	ShardCount int
	Vector     []uint64
	// MailQueuedNanos and MailCoalesced are a reqMailBatch's sender-side
	// outbox telemetry: the queueing age of the batch's oldest entry and
	// the supersessions coalesced away while it queued. They ride the
	// codec-v5 trailing section (two bytes on non-mail requests); pre-v5
	// peers never receive reqMailBatch at all — the client falls back to
	// per-entry reqMail.
	MailQueuedNanos int64
	MailCoalesced   int64
}

type response struct {
	Needed   []bool
	Entries  []store.Entry
	InSync   bool
	Checksum uint64
	Now      int64
	// Bound and More resume the server's peel-back walk: Bound is the
	// oldest index record the server examined, More whether records older
	// than it remain.
	Bound timestamp.T
	More  bool
	// Hops mirrors request.Hops for the response's Entries.
	Hops []trace.Hop
	Err  string
	// Digests mirrors request.Digests: the responder's view, piggybacked
	// back so digest exchange is bidirectional like the data exchange.
	Digests []cluster.Digest
	// ShardCount and Vector answer reqShardVector with the responder's
	// shard count and per-shard live checksums. For reqPeelBackShard the
	// existing Checksum field carries the requested shard's live checksum
	// instead of the global one.
	ShardCount int
	Vector     []uint64
}

// Server-side session limits: an idle session is reaped after
// serverIdleTimeout without a request; a response write gets
// serverWriteTimeout.
const (
	serverIdleTimeout  = 2 * time.Minute
	serverWriteTimeout = 30 * time.Second
)

// ServerOptions tunes a Server. The zero value serves every codec and
// binds the UDP fast path.
type ServerOptions struct {
	// Codec caps the codec the handshake may settle on: "" or "binary"
	// (serve both, prefer binary), or "gob" (never negotiate binary — the
	// rollout safety valve). Legacy clients that send no hello always get a
	// gob session regardless.
	Codec string
	// DisableUDP skips binding the UDP fast-path socket; rumor pushes from
	// UDP-enabled peers then time out once and fall back to pooled TCP.
	DisableUDP bool
}

// parseCodec maps a codec flag value to the wire byte. legacy reports the
// client-only mode that skips the hello for pre-negotiation servers. The
// pinned "binary-v2"/"binary-v3"/"binary-v4" names cap negotiation at an
// older binary version — rollout valves (and mixed-version test handles)
// for clusters still carrying pre-digest, pre-shard-vector, or
// pre-batched-mail builds.
func parseCodec(name string) (codec byte, legacy bool, err error) {
	switch name {
	case "", "binary":
		return codecBinaryMail, false, nil
	case "binary-v2":
		return codecBinary, false, nil
	case "binary-v3":
		return codecBinaryDigest, false, nil
	case "binary-v4":
		return codecBinaryShard, false, nil
	case "gob":
		return codecGob, false, nil
	case "legacy":
		return codecGob, true, nil
	default:
		return 0, false, fmt.Errorf("transport: unknown codec %q (want binary, binary-v2, binary-v3, binary-v4, gob, or legacy)", name)
	}
}

// Server exposes a node.Node to remote TCPPeers over persistent framed
// sessions, plus a UDP socket on the same port for single-datagram rumor
// pushes.
type Server struct {
	node     *node.Node
	ln       net.Listener
	udp      *net.UDPConn // nil when the fast path is disabled
	maxCodec byte
	wg       sync.WaitGroup
	mu       sync.Mutex
	done     bool

	conns map[net.Conn]struct{}

	log      *slog.Logger
	observer func(kind string, d time.Duration)
}

// Serve starts a server for n on addr ("host:port", ":0" for an ephemeral
// port) with default options. It returns immediately; use Addr for the
// bound address and Close to stop.
func Serve(n *node.Node, addr string) (*Server, error) {
	return ServeWith(n, addr, ServerOptions{})
}

// ServeWith starts a server with explicit options.
func ServeWith(n *node.Node, addr string, opts ServerOptions) (*Server, error) {
	maxCodec, legacy, err := parseCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	if legacy {
		maxCodec = codecGob // "legacy" is a client mode; serve it as gob
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{
		node:     n,
		ln:       ln,
		maxCodec: maxCodec,
		conns:    make(map[net.Conn]struct{}),
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if !opts.DisableUDP {
		// Same port as TCP so one advertised address serves both paths. A
		// bind failure (port taken by another process's UDP socket) is not
		// fatal: peers fall back to TCP.
		if uaddr, err := net.ResolveUDPAddr("udp", ln.Addr().String()); err == nil {
			if uc, err := net.ListenUDP("udp", uaddr); err == nil {
				s.udp = uc
				s.wg.Add(1)
				go s.serveUDP(uc)
			}
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger installs a structured logger for request handling (served
// requests at Debug, decode failures at Warn). Call before traffic
// arrives; nil restores the discard logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// SetObserver installs a per-request hook (kind, handling duration) used
// to bridge transport traffic into a metrics registry. Call before traffic
// arrives.
func (s *Server) SetObserver(fn func(kind string, d time.Duration)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

func (s *Server) instruments() (*slog.Logger, func(string, time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log, s.observer
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every open session, and waits for
// in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	if s.udp != nil {
		_ = s.udp.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// track registers an accepted connection; it reports false (and closes the
// conn) when the server is already shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		_ = conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing() {
				return
			}
			continue
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// handle serves one persistent session: the handshake fixes the codec,
// then requests are read and answered on the same framed streams until the
// client disconnects, the session idles out, or the stream breaks. One
// request/response pair is kept alive across the loop so a steady-state
// binary session serves without allocating.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sess := newSession(conn, maxWireBytes, codecGob)
	_ = conn.SetReadDeadline(time.Now().Add(serverIdleTimeout))
	if err := sess.serverHandshake(s.maxCodec); err != nil {
		return
	}
	log, observe := s.instruments()
	// slog's variadic attrs allocate even against a discard handler, so the
	// per-request Debug line is gated on the handler level once per session.
	debug := log.Enabled(context.Background(), slog.LevelDebug)
	var req request
	var resp response
	for {
		_ = conn.SetReadDeadline(time.Now().Add(serverIdleTimeout))
		if err := sess.readRequest(&req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closing() {
				log.Warn("gossip session ended abnormally",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		start := time.Now()
		resp = s.dispatch(req)
		d := time.Since(start)
		if observe != nil {
			observe(req.Kind.kindName(), d)
		}
		if debug {
			log.Debug("gossip request served", "kind", req.Kind.kindName(),
				"from", int(req.From), "entries", len(req.Entries), "dur", d)
		}
		_ = conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
		if err := sess.writeResponse(&resp); err != nil {
			log.Warn("gossip response write failed",
				"remote", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

// peelLimitCap bounds the batch size a remote caller can demand from the
// server-side peel walk.
const peelLimitCap = 8192

// clampPeelLimit sanitises a wire-supplied batch size.
func clampPeelLimit(limit int) int {
	if limit <= 0 {
		return core.DefaultPeelBatch
	}
	if limit > peelLimitCap {
		return peelLimitCap
	}
	return limit
}

func (s *Server) dispatch(req request) response {
	switch req.Kind {
	case reqMail:
		for i, e := range req.Entries {
			s.node.HandleMail(e, hopAt(req.Hops, i))
		}
		return response{}
	case reqMailBatch:
		return response{Needed: s.node.HandleMailBatch(node.MailBatch{
			Entries:     req.Entries,
			Hops:        req.Hops,
			QueuedNanos: req.MailQueuedNanos,
			Coalesced:   int(req.MailCoalesced),
		})}
	case reqPushRumors:
		return response{Needed: s.node.HandleRumors(req.Entries, req.Hops)}
	case reqPullRumors:
		entries, hops := s.node.HotEntriesTraced()
		return response{Entries: entries, Hops: hops, Digests: s.swapDigests(req.Digests)}
	case reqSync:
		st := s.node.Store()
		for i, e := range req.Entries {
			s.node.ApplyRepair(e, req.From, hopAt(req.Hops, i), trace.MechAntiEntropy)
		}
		now := maxInt64(st.Now(), req.Now)
		var recent []store.Entry
		if req.Tau > 0 {
			recent = st.RecentUpdates(now, req.Tau)
		}
		sum := st.ChecksumLive(now, req.Tau1)
		return response{
			Entries:  recent,
			Hops:     s.node.Tracer().Envelopes(recent),
			Checksum: sum,
			Now:      now,
			InSync:   sum == req.Checksum,
			Digests:  s.swapDigests(req.Digests),
		}
	case reqPeelBack:
		st := s.node.Store()
		for i, e := range req.Entries {
			s.node.ApplyRepair(e, req.From, hopAt(req.Hops, i), trace.MechPeelBack)
		}
		now := maxInt64(st.Now(), req.Now)
		batch, next, more := st.PeelBatch(req.Bound, clampPeelLimit(req.Limit), now, req.Tau1)
		return response{
			Entries:  batch,
			Hops:     s.node.Tracer().Envelopes(batch),
			Checksum: st.ChecksumLive(now, req.Tau1),
			Now:      now,
			Bound:    next,
			More:     more,
		}
	case reqFullSync:
		st := s.node.Store()
		for i, e := range req.Entries {
			s.node.ApplyRepair(e, req.From, hopAt(req.Hops, i), trace.MechAntiEntropy)
		}
		now := maxInt64(st.Now(), req.Now)
		full := st.LiveSnapshot(now, req.Tau1)
		return response{
			Entries:  full,
			Hops:     s.node.Tracer().Envelopes(full),
			Checksum: st.ChecksumLive(now, req.Tau1),
			Now:      now,
			InSync:   true,
		}
	case reqChecksum:
		st := s.node.Store()
		return response{Checksum: st.ChecksumLive(st.Now(), req.Tau1)}
	case reqShardVector:
		st := s.node.Store()
		now := maxInt64(st.Now(), req.Now)
		return response{
			Checksum:   st.ChecksumLive(now, req.Tau1),
			Now:        now,
			ShardCount: st.ShardCount(),
			Vector:     st.ChecksumVector(now, req.Tau1),
		}
	case reqPeelBackShard:
		st := s.node.Store()
		if req.ShardCount != st.ShardCount() || req.Shard < 0 || req.Shard >= st.ShardCount() {
			return response{Err: fmt.Sprintf("shard %d/%d incomparable with local %d shards",
				req.Shard, req.ShardCount, st.ShardCount())}
		}
		for i, e := range req.Entries {
			s.node.ApplyRepair(e, req.From, hopAt(req.Hops, i), trace.MechPeelBack)
		}
		now := maxInt64(st.Now(), req.Now)
		batch, next, more := st.PeelBatchShard(req.Shard, req.Bound, clampPeelLimit(req.Limit), now, req.Tau1)
		return response{
			Entries:  batch,
			Hops:     s.node.Tracer().Envelopes(batch),
			Checksum: st.ChecksumShard(req.Shard, now, req.Tau1),
			Now:      now,
			Bound:    next,
			More:     more,
		}
	default:
		return response{Err: fmt.Sprintf("unknown request kind %d", req.Kind)}
	}
}

// swapDigests merges digests a caller piggybacked into this node's
// directory and returns the local view to piggyback back. All nil-safe:
// with the observatory off both directions are nil and cost nothing.
func (s *Server) swapDigests(in []cluster.Digest) []cluster.Digest {
	dir := s.node.Digests()
	if dir == nil && in == nil {
		return nil
	}
	dir.Merge(in)
	return dir.Share()
}

// hopAt returns hops[i], or the zero (no-envelope) Hop when the sender
// shipped no envelopes or fewer than entries.
func hopAt(hops []trace.Hop, i int) trace.Hop {
	if i < len(hops) {
		return hops[i]
	}
	return trace.Hop{}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PeerOptions tunes a TCPPeer's pooled wire protocol. The zero value
// selects the defaults noted per field.
type PeerOptions struct {
	// Timeout is the dial timeout and the per-request deadline (default
	// 10s). Unlike a per-connection deadline, it re-arms for every
	// request, so long-lived pooled sessions never time out while healthy
	// traffic flows.
	Timeout time.Duration
	// PoolSize bounds the idle persistent sessions retained per peer
	// (default 2). Negative disables reuse entirely: every request dials
	// and closes its own connection (the pre-pool behaviour, kept for
	// comparison benchmarks).
	PoolSize int
	// MaxPeelRounds caps the peel-back batches per anti-entropy
	// conversation before falling back to a full database swap (default
	// 32).
	MaxPeelRounds int
	// Codec selects the wire codec the peer asks for in the connection
	// handshake: "" or "binary" (the hand-rolled codec, with negotiation
	// falling back to gob against an old server),
	// "binary-v2"/"binary-v3"/"binary-v4" (pin an older binary version),
	// "gob" (negotiate but stick to gob), or "legacy" (send no hello at
	// all — wire-compatible with pre-negotiation daemons).
	Codec string
	// UDP enables the single-datagram fast path for rumor pushes (udp.go).
	// Pushes that exceed the datagram budget, or that get no response
	// within UDPTimeout after UDPRetries resends, fall back to pooled TCP.
	UDP bool
	// UDPTimeout bounds one datagram attempt (default 300ms).
	UDPTimeout time.Duration
	// UDPRetries is the number of resends after the first attempt before
	// falling back (default 2).
	UDPRetries int
	// UDPBudget caps the datagram size for the fast path (default 1200
	// bytes, a conservative single-MTU figure).
	UDPBudget int
	// DisableShardVector turns off the codec-v4 shard-vector anti-entropy
	// path: conversations then always use the global peel-back walk, as
	// pre-v4 peers do. The zero value enables it (it self-disables against
	// peers that cannot negotiate v4 or whose shard count differs).
	DisableShardVector bool
	// ShardRepairWorkers bounds the diverged shards repaired concurrently
	// during one shard-vector exchange (default 4). Each worker runs its
	// own pooled session, so the effective parallelism is also bounded by
	// PoolSize plus overflow dials.
	ShardRepairWorkers int
	// Stats, when set, receives pool and wire-traffic accounting; share
	// one WireStats across all peers of a process.
	Stats *WireStats
	// Digests, when set, is the calling node's cluster-digest directory:
	// anti-entropy and rumor-pull conversations piggyback its Share() and
	// merge what the peer sends back. Nil disables the piggyback.
	Digests *cluster.Directory
}

// Defaults for PeerOptions zero values.
const (
	defaultPeerTimeout        = 10 * time.Second
	defaultPoolSize           = 2
	defaultMaxPeelRounds      = 32
	defaultShardRepairWorkers = 4
)

func (o PeerOptions) withDefaults() PeerOptions {
	if o.Timeout <= 0 {
		o.Timeout = defaultPeerTimeout
	}
	if o.PoolSize == 0 {
		o.PoolSize = defaultPoolSize
	}
	if o.MaxPeelRounds <= 0 {
		o.MaxPeelRounds = defaultMaxPeelRounds
	}
	if o.ShardRepairWorkers <= 0 {
		o.ShardRepairWorkers = defaultShardRepairWorkers
	}
	if o.UDPTimeout <= 0 {
		o.UDPTimeout = defaultUDPTimeout
	}
	if o.UDPRetries <= 0 {
		o.UDPRetries = defaultUDPRetries
	}
	if o.UDPBudget <= 0 {
		o.UDPBudget = defaultUDPBudget
	}
	return o
}

// TCPPeer is a node.Peer implemented over the pooled wire protocol above,
// with an optional UDP fast path for rumor pushes. All methods are safe
// for concurrent use; concurrent requests each check a session out of the
// pool (dialing extras as needed).
type TCPPeer struct {
	id   timestamp.SiteID
	addr string
	opts PeerOptions
	pool *pool

	udpOnce sync.Once
	udp     *udpClient // nil until first fast-path push, or on dial failure
}

var _ node.Peer = (*TCPPeer)(nil)

// NewTCPPeer addresses a remote replica with default options. The caller
// supplies the remote site ID (the membership list carries IDs alongside
// addresses).
func NewTCPPeer(id timestamp.SiteID, addr string) *TCPPeer {
	return NewTCPPeerWith(id, addr, PeerOptions{})
}

// NewTCPPeerWith addresses a remote replica with explicit options.
func NewTCPPeerWith(id timestamp.SiteID, addr string, opts PeerOptions) *TCPPeer {
	opts = opts.withDefaults()
	prefer, legacy, err := parseCodec(opts.Codec)
	if err != nil {
		// An unknown codec name cannot surface from a constructor with this
		// signature; fail toward the interoperable default.
		prefer, legacy = codecBinary, false
	}
	return &TCPPeer{
		id:   id,
		addr: addr,
		opts: opts,
		pool: newPool(addr, opts.PoolSize, opts.Timeout, prefer, legacy, opts.Stats),
	}
}

// ID implements node.Peer.
func (p *TCPPeer) ID() timestamp.SiteID { return p.id }

// Addr returns the remote address.
func (p *TCPPeer) Addr() string { return p.addr }

// Close releases the peer's pooled connections and the fast-path socket.
// The peer remains usable; subsequent requests dial fresh TCP sessions
// (the UDP socket is not re-dialed).
func (p *TCPPeer) Close() error {
	p.pool.close()
	p.udpOnce.Do(func() {}) // no fast path after Close
	if p.udp != nil {
		p.udp.close()
	}
	return nil
}

// fastPath returns the peer's UDP client, dialing it on first use; nil
// when the fast path is disabled or its socket cannot be set up.
func (p *TCPPeer) fastPath() *udpClient {
	if !p.opts.UDP {
		return nil
	}
	p.udpOnce.Do(func() {
		c, err := dialUDP(p.addr, p.opts.UDPBudget, p.opts.UDPTimeout, p.opts.UDPRetries, p.opts.Stats)
		if err == nil {
			p.udp = c
		}
	})
	return p.udp
}

// wireCall bundles one request/response pair plus the scratch a single-
// entry mail needs, pooled so steady-state calls allocate nothing.
type wireCall struct {
	req               request
	resp              response
	bytesOut, bytesIn int64
	entryBuf          [1]store.Entry
	hopBuf            [1]trace.Hop
	vecBuf            []uint64 // shard-vector scratch (reqShardVector)
}

var wireCallPool = sync.Pool{New: func() any { return new(wireCall) }}

func getWireCall() *wireCall { return wireCallPool.Get().(*wireCall) }

// putWireCall clears the call before pooling it so no request payload (or
// key/value memory) stays pinned. Response slices handed out to callers
// are safe: every decode allocates fresh ones.
func putWireCall(c *wireCall) {
	c.req = request{}
	c.resp = response{}
	c.bytesOut, c.bytesIn = 0, 0
	c.entryBuf[0] = store.Entry{}
	c.hopBuf[0] = trace.Hop{}
	c.vecBuf = c.vecBuf[:0]
	wireCallPool.Put(c)
}

// errRemote marks an error the peer's dispatcher reported (as opposed to a
// transport failure); shard-vector conversations downgrade on it instead of
// failing the whole exchange, since it usually means the server's shard
// topology changed mid-conversation.
var errRemote = errors.New("transport: remote error")

// call runs c's request over the pool, accumulating framed bytes moved and
// surfacing remote errors.
func (p *TCPPeer) call(c *wireCall) error {
	o, i, err := p.pool.roundTrip(&c.req, &c.resp)
	c.bytesOut += o
	c.bytesIn += i
	if err != nil {
		return fmt.Errorf("transport: %s: %w", p.addr, err)
	}
	if c.resp.Err != "" {
		return fmt.Errorf("%w: %s", errRemote, c.resp.Err)
	}
	return nil
}

// Mail implements node.Peer. The entry and its envelope ride the pooled
// call's scratch arrays, so untraced mail allocates nothing client-side.
func (p *TCPPeer) Mail(e store.Entry, hop trace.Hop) error {
	c := getWireCall()
	defer putWireCall(c)
	c.entryBuf[0] = e
	c.req = request{Kind: reqMail, Entries: c.entryBuf[:1]}
	if hop.Valid {
		c.hopBuf[0] = hop
		c.req.Hops = c.hopBuf[:1]
	}
	return p.call(c)
}

// MailBatch implements node.BatchMailer: one outbox drain rides one
// reqMailBatch frame on a codec-v5 session. Against older peers the batch
// transparently degrades to per-entry Mail round trips — negotiation
// guarantees a pre-v5 server never sees the new request kind.
func (p *TCPPeer) MailBatch(b node.MailBatch) error {
	entries, hops := b.Entries, b.Hops
	if len(entries) == 0 {
		return nil
	}
	if len(entries) == 1 {
		return p.Mail(entries[0], hopAt(hops, 0))
	}
	if !p.pool.mailCapable() {
		// Before the first handshake the session codec is unknown (a fresh
		// pool reports gob). One per-entry round trip both delivers the
		// head and settles the codec; re-check before shipping the rest.
		if err := p.Mail(entries[0], hopAt(hops, 0)); err != nil {
			return err
		}
		entries = entries[1:]
		if len(hops) > 0 {
			hops = hops[1:]
		}
		if !p.pool.mailCapable() {
			// Genuinely pre-v5 peer: per-entry fallback for the remainder.
			p.opts.Stats.noteMailFallback(len(entries))
			var first error
			for i := range entries {
				if err := p.Mail(entries[i], hopAt(hops, i)); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
	}
	c := getWireCall()
	defer putWireCall(c)
	c.req = request{
		Kind:            reqMailBatch,
		Entries:         entries,
		Hops:            hops,
		MailQueuedNanos: b.QueuedNanos,
		MailCoalesced:   int64(b.Coalesced),
	}
	if err := p.call(c); err != nil {
		return err
	}
	p.opts.Stats.noteMailBatch(len(entries))
	return nil
}

// PushRumors implements node.Peer. Small pushes try the UDP fast path
// first (when enabled), falling back to pooled TCP on oversize, loss, or
// timeout.
func (p *TCPPeer) PushRumors(entries []store.Entry, hops []trace.Hop) ([]bool, error) {
	c := getWireCall()
	defer putWireCall(c)
	c.req = request{Kind: reqPushRumors, Entries: entries, Hops: hops}
	if u := p.fastPath(); u != nil {
		if u.roundTrip(&c.req, &c.resp) {
			if c.resp.Err != "" {
				return nil, fmt.Errorf("%w: %s", errRemote, c.resp.Err)
			}
			return c.resp.Needed, nil
		}
		p.opts.Stats.noteUDPFallback()
	}
	if err := p.call(c); err != nil {
		return nil, err
	}
	return c.resp.Needed, nil
}

// PullRumors implements node.Peer. When the cluster observatory is on,
// the pull carries the local digest view out and merges the peer's back.
func (p *TCPPeer) PullRumors() ([]store.Entry, []trace.Hop, error) {
	c := getWireCall()
	defer putWireCall(c)
	c.req = request{Kind: reqPullRumors, Digests: p.opts.Digests.Share()}
	if err := p.call(c); err != nil {
		return nil, nil, err
	}
	p.opts.Digests.Merge(c.resp.Digests)
	return c.resp.Entries, c.resp.Hops, nil
}

// Checksum implements node.Peer.
func (p *TCPPeer) Checksum(tau1 int64) (uint64, error) {
	c := getWireCall()
	defer putWireCall(c)
	c.req = request{Kind: reqChecksum, Tau1: tau1}
	if err := p.call(c); err != nil {
		return 0, err
	}
	return c.resp.Checksum, nil
}

// AntiEntropy implements node.Peer: the §1.3/§1.5 incremental exchange
// over the wire. Round 0 swaps recent-update lists and compares live
// checksums; on mismatch the two sides peel back through their databases
// in reverse-timestamp batches, re-comparing checksums after every batch
// and stopping as soon as they agree — O(δ) entries shipped for δ
// differing keys. Only when MaxPeelRounds batches have not reconciled the
// replicas does the conversation degrade to the full swap.
func (p *TCPPeer) AntiEntropy(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer) (core.ExchangeStats, error) {
	var st core.ExchangeStats
	c := getWireCall()
	defer putWireCall(c)

	now := local.Now()
	var recent []store.Entry
	if cfg.Tau > 0 {
		recent = local.RecentUpdates(now, cfg.Tau)
	}
	c.req = request{
		Kind:     reqSync,
		From:     local.Site(),
		Entries:  recent,
		Hops:     tr.Envelopes(recent),
		Checksum: local.ChecksumLive(now, cfg.Tau1),
		Now:      now,
		Tau:      cfg.Tau,
		Tau1:     cfg.Tau1,
		Digests:  p.opts.Digests.Share(),
	}
	if err := p.call(c); err != nil {
		return st, err
	}
	p.opts.Digests.Merge(c.resp.Digests)
	st.EntriesSent += len(recent)
	p.applyReceived(local, c.resp.Entries, c.resp.Hops, trace.MechAntiEntropy, &st)
	now = maxInt64(now, c.resp.Now)
	st.ChecksumsCompared++
	if local.ChecksumLive(now, cfg.Tau1) == c.resp.Checksum {
		p.finishExchange(c, &st)
		return st, nil
	}

	// Checksums disagree. On a v4 session, first narrow the divergence to
	// individual shards with one vector round trip and repair only those,
	// in parallel; any wrinkle (old peer, mismatched shard counts,
	// mid-conversation topology change) downgrades to the global walk.
	if !p.opts.DisableShardVector && p.pool.shardCapable() {
		// The repair workers capture the stats pointer, which would force
		// st itself onto the heap for every conversation — including the
		// allocation-free in-sync fast path above. Hand them a copy that
		// only escapes on this (already allocating) mismatch path.
		sv := st
		done, err := p.shardRepair(cfg, local, tr, now, c, &sv)
		if err != nil {
			return sv, err
		}
		if done {
			p.finishExchange(c, &sv)
			return sv, nil
		}
		st = sv // keep whatever the abandoned narrow attempt repaired
		p.opts.Stats.noteShardVecDowngrade()
	}

	// Peel back in reverse-timestamp batches until the checksums agree,
	// both sides walking their own index (§1.3).
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = core.DefaultPeelBatch
	}
	localBound, remoteBound := store.PeelStart, store.PeelStart
	localMore, remoteMore := true, true
	for round := 0; round < p.opts.MaxPeelRounds; round++ {
		var mine []store.Entry
		if localMore {
			mine, localBound, localMore = local.PeelBatch(localBound, batch, now, cfg.Tau1)
		}
		c.req = request{
			Kind:    reqPeelBack,
			From:    local.Site(),
			Entries: mine,
			Hops:    tr.Envelopes(mine),
			Bound:   remoteBound,
			Limit:   batch,
			Now:     now,
			Tau1:    cfg.Tau1,
		}
		if err := p.call(c); err != nil {
			return st, err
		}
		st.EntriesSent += len(mine)
		p.applyReceived(local, c.resp.Entries, c.resp.Hops, trace.MechPeelBack, &st)
		remoteBound, remoteMore = c.resp.Bound, c.resp.More
		now = maxInt64(now, c.resp.Now)
		st.ChecksumsCompared++
		if local.ChecksumLive(now, cfg.Tau1) == c.resp.Checksum {
			p.finishExchange(c, &st)
			return st, nil
		}
		if !localMore && !remoteMore {
			// Both walks exhausted: every shippable entry crossed the
			// wire; remaining differences are dormant certificates the
			// protocol must not propagate (§2.2).
			p.finishExchange(c, &st)
			return st, nil
		}
	}

	// Capped last resort: the peel budget is spent and the replicas still
	// disagree — swap full live databases in one round trip.
	st.FullCompare = true
	full := local.LiveSnapshot(now, cfg.Tau1)
	c.req = request{
		Kind: reqFullSync, From: local.Site(), Entries: full,
		Hops: tr.Envelopes(full), Now: now, Tau1: cfg.Tau1,
	}
	if err := p.call(c); err != nil {
		return st, err
	}
	st.EntriesSent += len(full)
	p.applyReceived(local, c.resp.Entries, c.resp.Hops, trace.MechAntiEntropy, &st)
	p.finishExchange(c, &st)
	return st, nil
}

// shardRepair is the codec-v4 narrow path of an anti-entropy conversation:
// one round trip swaps per-shard live-checksum vectors, then only the
// diverged shards are peeled — each confined to one lock stripe on both
// sides — by a bounded pool of workers over concurrent pooled sessions. It
// reports done=true when the exchange converged (or provably cannot make
// further live progress); done=false with a nil error means the caller
// should fall back to the global peel walk. agg accumulates the byte
// counters of every session the repair used.
func (p *TCPPeer) shardRepair(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer, now int64, agg *wireCall, st *core.ExchangeStats) (bool, error) {
	v := getWireCall()
	defer func() {
		agg.bytesOut += v.bytesOut
		agg.bytesIn += v.bytesIn
		putWireCall(v)
	}()

	v.req = request{
		Kind: reqShardVector,
		From: local.Site(),
		Now:  now,
		Tau1: cfg.Tau1,
	}
	v.req.Vector = local.AppendChecksumVector(v.vecBuf[:0], now, cfg.Tau1)
	v.vecBuf = v.req.Vector[:0]
	if err := p.call(v); err != nil {
		if errors.Is(err, errRemote) {
			return false, nil // old dispatcher mid-upgrade: downgrade
		}
		return false, err
	}
	st.ChecksumsCompared++
	now = maxInt64(now, v.resp.Now)
	if v.resp.ShardCount != local.ShardCount() || len(v.resp.Vector) != len(v.req.Vector) {
		return false, nil // incomparable key→shard maps
	}
	var diverged []int
	for i, sum := range v.req.Vector {
		if sum != v.resp.Vector[i] {
			diverged = append(diverged, i)
		}
	}

	batch := cfg.BatchSize
	if batch <= 0 {
		batch = core.DefaultPeelBatch
	}
	if len(diverged) > 0 {
		workers := p.opts.ShardRepairWorkers
		if workers > len(diverged) {
			workers = len(diverged)
		}
		var (
			next     atomic.Int64
			degraded atomic.Bool
			mu       sync.Mutex // guards st, agg, and the trace.Tracer handoff
			firstErr error
			wg       sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(diverged) || degraded.Load() || func() bool { mu.Lock(); defer mu.Unlock(); return firstErr != nil }() {
						return
					}
					err := p.repairShard(cfg, local, tr, diverged[i], now, batch, &mu, agg, st)
					switch {
					case err == nil:
					case errors.Is(err, errRemote) || errors.Is(err, errShardDowngrade):
						degraded.Store(true)
					default:
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return false, firstErr
		}
		if degraded.Load() {
			return false, nil
		}
		st.ShardsRepaired += len(diverged)
	}

	// Terminal recompare: the global live checksums must now agree.
	// Anything still skewed (a dormancy transition raced the repair, a
	// concurrent writer) is the global walk's problem.
	v.req = request{Kind: reqChecksum, Tau1: cfg.Tau1}
	if err := p.call(v); err != nil {
		if errors.Is(err, errRemote) {
			return false, nil
		}
		return false, err
	}
	st.ChecksumsCompared++
	if local.ChecksumLive(maxInt64(now, local.Now()), cfg.Tau1) != v.resp.Checksum {
		return false, nil
	}
	p.opts.Stats.noteShardVec(len(diverged))
	return true, nil
}

// errShardDowngrade signals that one shard's repair could not finish within
// the peel budget; the conversation falls back to the global walk.
var errShardDowngrade = errors.New("transport: shard-vector downgrade")

// shardProbeBatch is the opening batch size of a shard repair (it ramps ×4
// per round up to the configured BatchSize).
const shardProbeBatch = 8

// repairShard reconciles one diverged shard: both sides peel that shard's
// slice of the timestamp index in reverse order, re-comparing the shard
// checksum after every batch. Runs on a worker goroutine; all shared state
// (stats, byte aggregation, tracer envelopes) is touched under mu.
func (p *TCPPeer) repairShard(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer, shard int, now int64, batch int, mu *sync.Mutex, agg *wireCall, st *core.ExchangeStats) error {
	c := getWireCall()
	defer func() {
		mu.Lock()
		agg.bytesOut += c.bytesOut
		agg.bytesIn += c.bytesIn
		mu.Unlock()
		putWireCall(c)
	}()

	// The expected divergence inside one shard is δ/S — usually a couple
	// of entries, usually recent. Start with a small probe batch and ramp
	// toward the configured size, so shallow per-shard divergence costs
	// O(δ) on the wire instead of a full batch each way.
	b := batch
	if b > shardProbeBatch {
		b = shardProbeBatch
	}
	localBound, remoteBound := store.PeelStart, store.PeelStart
	localMore, remoteMore := true, true
	for round := 0; round < p.opts.MaxPeelRounds; round++ {
		var mine []store.Entry
		if localMore {
			mine, localBound, localMore = local.PeelBatchShard(shard, localBound, b, now, cfg.Tau1)
		}
		mu.Lock()
		hops := tr.Envelopes(mine)
		mu.Unlock()
		c.req = request{
			Kind:       reqPeelBackShard,
			From:       local.Site(),
			Entries:    mine,
			Hops:       hops,
			Bound:      remoteBound,
			Limit:      b,
			Now:        now,
			Tau1:       cfg.Tau1,
			Shard:      shard,
			ShardCount: local.ShardCount(),
		}
		if b *= 4; b > batch {
			b = batch
		}
		if err := p.call(c); err != nil {
			return err
		}
		remoteBound, remoteMore = c.resp.Bound, c.resp.More
		mu.Lock()
		st.EntriesSent += len(mine)
		p.applyReceived(local, c.resp.Entries, c.resp.Hops, trace.MechPeelBack, st)
		st.ChecksumsCompared++
		mu.Unlock()
		if local.ChecksumShard(shard, now, cfg.Tau1) == c.resp.Checksum {
			return nil
		}
		if !localMore && !remoteMore {
			// Shard walks exhausted; residual skew is dormant-certificate
			// divergence the terminal recompare will adjudicate.
			return nil
		}
	}
	return fmt.Errorf("%w: shard %d budget exhausted", errShardDowngrade, shard)
}

// finishExchange attributes one completed anti-entropy conversation to the
// peer's stats.
func (p *TCPPeer) finishExchange(c *wireCall, st *core.ExchangeStats) {
	p.opts.Stats.noteExchange(st.EntriesSent, st.EntriesReceived, c.bytesOut, c.bytesIn)
}

// applyReceived merges entries the peer shipped into the local store,
// attributing traffic and repairs to the exchange stats. hops are the
// peer's provenance envelopes (nil when it does not trace); each applied
// entry becomes a Repair so the caller can stamp causal hop spans.
func (p *TCPPeer) applyReceived(local *store.Store, entries []store.Entry, hops []trace.Hop, mech trace.Mechanism, st *core.ExchangeStats) {
	for i, e := range entries {
		st.EntriesReceived++
		if local.Apply(e).Changed() {
			st.EntriesApplied++
			st.AppliedKeys = append(st.AppliedKeys, e.Key)
			if st.AppliedBySite == nil {
				st.AppliedBySite = make(map[timestamp.SiteID][]string)
			}
			st.AppliedBySite[local.Site()] = append(st.AppliedBySite[local.Site()], e.Key)
			senderHop := trace.HopUnknown
			if h := hopAt(hops, i); h.Valid {
				senderHop = h.Count
			}
			st.Repairs = append(st.Repairs, core.Repair{
				Site: local.Site(), Parent: p.id,
				Key: e.Key, Stamp: e.Stamp,
				Mech: mech, SenderHop: senderHop,
			})
		}
	}
}
