package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// shardVecScenario is one divergence layout: a shared history plus entries
// private to each side, scattered across shards by the key hash.
type shardVecScenario struct {
	shared, localOnly, remoteOnly int
	seed                          int64
}

// buildShardVecPair constructs a served remote node plus a local store with
// the scenario's divergence. It returns the expected key sets each side is
// missing: exactly what a correct repair must apply on each side.
func buildShardVecPair(t *testing.T, sc shardVecScenario, serverCodec string, localShards, remoteShards int) (*store.Store, *node.Node, *Server, map[string]bool, map[string]bool) {
	t.Helper()
	src := timestamp.NewSimulated(1 << 30)
	remote, err := node.New(node.Config{Site: 2, Clock: src.ClockAt(2), StoreShards: remoteShards})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith(remote, "127.0.0.1:0", ServerOptions{Codec: serverCodec})
	if err != nil {
		t.Fatal(err)
	}
	local := store.NewSharded(1, src.ClockAt(1), localShards)

	rng := rand.New(rand.NewSource(sc.seed))
	localMissing := map[string]bool{}  // keys local must receive
	remoteMissing := map[string]bool{} // keys remote must receive
	n := sc.shared + sc.localOnly + sc.remoteOnly
	for i := 0; i < n; i++ {
		// The random prefix scatters keys across shards; the index suffix
		// keeps every key unique so the expected sets are exact.
		key := fmt.Sprintf("pk%05d-%04d", rng.Intn(1<<20), i)
		switch {
		case i < sc.shared:
			e := local.Update(key, store.Value("v"))
			remote.Store().Apply(e)
		case i < sc.shared+sc.localOnly:
			local.Update(key, store.Value("mine"))
			remoteMissing[key] = true
		default:
			remote.Store().Update(key, store.Value("theirs"))
			localMissing[key] = true
		}
		src.Advance(1)
	}
	src.Advance(500) // push all divergence outside any recent window
	return local, remote, srv, localMissing, remoteMissing
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestShardVectorRepairPropertyAcrossCodecs is the wire-level correctness
// property: for random divergence scattered across shards, a shard-vector
// exchange applies exactly the key set a global peel-back applies, and both
// converge — across every codec negotiation pairing, including peers whose
// shard counts make the vectors incomparable.
func TestShardVectorRepairPropertyAcrossCodecs(t *testing.T) {
	cases := []struct {
		name                      string
		clientCodec, serverCodec  string
		localShards, remoteShards int
		wantShardVec              bool // narrow path should complete
		wantDowngrade             bool // narrow path attempted but abandoned
	}{
		{"v4-v4", "binary", "binary", 16, 16, true, false},
		{"v4-v3", "binary", "binary-v3", 16, 16, false, false},
		{"v4-v2", "binary", "binary-v2", 16, 16, false, false},
		{"v4-gob", "binary", "gob", 16, 16, false, false},
		{"v3-v4", "binary-v3", "binary", 16, 16, false, false},
		{"legacy-v4", "legacy", "binary", 16, 16, false, false},
		{"v4-v4-mismatched-shards", "binary", "binary", 16, 64, false, true},
	}
	sc := shardVecScenario{shared: 300, localOnly: 25, remoteOnly: 25, seed: 0x5eed}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(disable bool) (st core.ExchangeStats, snap WireSnapshot, local *store.Store, remote *node.Node) {
				local, remote, srv, localMissing, remoteMissing := buildShardVecPair(
					t, sc, tc.serverCodec, tc.localShards, tc.remoteShards)
				defer srv.Close()
				stats := &WireStats{}
				peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
					Codec: tc.clientCodec, DisableShardVector: disable, Stats: stats,
				})
				defer peer.Close()
				st, err := peer.AntiEntropy(core.ResolveConfig{
					Mode: core.PushPull, Strategy: core.CompareRecent,
					Tau: 10, BatchSize: 16,
				}, local, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !store.ContentEqual(local, remote.Store()) {
					t.Fatal("stores differ after anti-entropy")
				}
				// The applied key set on the local side must be exactly the
				// keys local was missing; remote convergence plus ContentEqual
				// pins the other direction.
				got := map[string]bool{}
				for _, k := range st.AppliedKeys {
					got[k] = true
				}
				want := sortedKeys(localMissing)
				if gotKeys := sortedKeys(got); !equalStrings(gotKeys, want) {
					t.Fatalf("applied %d keys %v\nwant %d keys %v", len(gotKeys), gotKeys, len(want), want)
				}
				for k := range remoteMissing {
					if _, ok := remote.Store().Lookup(k); !ok {
						t.Fatalf("remote still missing %q", k)
					}
				}
				return st, stats.Snapshot(), local, remote
			}

			svStats, snap, _, _ := run(false)
			pbStats, _, _, _ := run(true)

			// Identical applied sets were asserted inside run for both paths;
			// here pin which mechanism did the work.
			if tc.wantShardVec {
				if snap.ShardVecExchanges == 0 {
					t.Error("shard-vector path not taken on a v4<->v4 session")
				}
				if snap.ShardVecDowngrades != 0 {
					t.Errorf("unexpected downgrades: %d", snap.ShardVecDowngrades)
				}
				if svStats.ShardsRepaired == 0 {
					t.Error("ShardsRepaired = 0 on the shard-vector path")
				}
			} else {
				if snap.ShardVecExchanges != 0 {
					t.Errorf("shard-vector path ran on %s: %+v", tc.name, snap)
				}
				if tc.wantDowngrade && snap.ShardVecDowngrades == 0 {
					t.Error("expected a recorded downgrade")
				}
				if !tc.wantDowngrade && snap.ShardVecDowngrades != 0 {
					t.Errorf("unexpected downgrade on %s", tc.name)
				}
			}
			if pbStats.ShardsRepaired != 0 {
				t.Error("global path reported repaired shards")
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardVectorWorkerPoolRepairsManyShards drives a divergence wide
// enough to occupy every worker and checks the parallel repair is exact.
func TestShardVectorWorkerPoolRepairsManyShards(t *testing.T) {
	sc := shardVecScenario{shared: 200, localOnly: 120, remoteOnly: 120, seed: 7}
	local, remote, srv, localMissing, _ := buildShardVecPair(t, sc, "binary", 32, 32)
	defer srv.Close()
	stats := &WireStats{}
	peer := NewTCPPeerWith(2, srv.Addr(), PeerOptions{
		Codec: "binary", Stats: stats, ShardRepairWorkers: 8,
	})
	defer peer.Close()
	st, err := peer.AntiEntropy(core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 10, BatchSize: 16,
	}, local, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(local, remote.Store()) {
		t.Fatal("stores differ after parallel shard repair")
	}
	if st.EntriesApplied != len(localMissing) {
		t.Errorf("applied %d entries, want %d", st.EntriesApplied, len(localMissing))
	}
	snap := stats.Snapshot()
	if snap.ShardVecExchanges != 1 || st.ShardsRepaired == 0 {
		t.Errorf("narrow path accounting off: %+v / repaired %d", snap, st.ShardsRepaired)
	}
	if snap.ShardVecShards != int64(st.ShardsRepaired) {
		t.Errorf("stats shards %d != exchange shards %d", snap.ShardVecShards, st.ShardsRepaired)
	}
}
