package transport

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// UDP rumor fast path. A small rumor push is one request/response pair
// with a payload of a few hundred bytes — paying a pooled TCP round trip
// (framing, ACK clocking, head-of-line blocking behind an anti-entropy
// conversation) for it is pure overhead. Instead, pushes that fit in a
// single datagram travel over UDP: each request carries a MsgID, the
// client writes the datagram and reads responses off the connected socket
// until the echoed MsgID matches (stale or duplicate responses from
// earlier attempts are dropped on the floor). Round trips are serialized
// per client, which keeps the path allocation-free and saves the goroutine
// handoff a shared read loop would cost. Loss is handled by per-message
// retry under a read deadline; when the retries are spent — or the push
// does not fit the datagram budget — the push transparently falls back to
// the pooled TCP path, so a lost datagram or a stalled socket can never
// wedge the rumor loop. Anti-entropy, peel-back, and oversized payloads
// always use TCP.
//
// Datagram layout (both directions):
//
//	[0..1]  magic 'E','U'
//	[2]     protocol version (1)
//	[3]     type: 0 request, 1 response
//	[4..11] MsgID, big-endian
//	[12..]  body: the binary codec's request/response encoding (codec.go)
//
// Retried pushes are idempotent merges, but a retry whose first copy was
// applied (response lost) reports needed=false for entries the peer did in
// fact need — the same once-retried semantics the pooled TCP path has, and
// harmless to the rumor counters.

const (
	udpVersion      = 1
	udpTypeRequest  = 0
	udpTypeResponse = 1
	udpHeaderLen    = 12
	// udpReadBuf bounds a received datagram; responses above it are never
	// generated (the request budget is far smaller).
	udpReadBuf = 64 << 10
)

// UDP fast-path defaults (see PeerOptions).
const (
	defaultUDPBudget  = 1200 // conservative single-MTU datagram budget
	defaultUDPTimeout = 300 * time.Millisecond
	defaultUDPRetries = 2
	// After udpDownThreshold consecutive failures the fast path turns
	// itself off and only probes every udpProbeEvery-th push, so a peer
	// with no UDP service costs one timeout per probe instead of one per
	// push.
	udpDownThreshold = 3
	udpProbeEvery    = 16
)

// udpMsgID issues process-wide unique message IDs, seeded randomly so IDs
// do not collide across client restarts talking to the same server.
var udpMsgID atomic.Uint64

func init() {
	udpMsgID.Store(rand.Uint64())
}

// udpClient is the fast-path endpoint a TCPPeer holds toward one remote.
// All methods are safe for concurrent use; round trips serialize on mu.
type udpClient struct {
	conn    *net.UDPConn
	stats   *WireStats
	budget  int
	timeout time.Duration
	retries int

	mu    sync.Mutex // serializes round trips; guards the scratch buffers
	dgram []byte
	rbuf  []byte

	closed atomic.Bool
	down   atomic.Int32  // consecutive failed pushes
	skips  atomic.Uint64 // pushes skipped while down, for probing
}

// dialUDP opens a connected UDP socket to addr.
func dialUDP(addr string, budget int, timeout time.Duration, retries int, stats *WireStats) (*udpClient, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	return &udpClient{
		conn:    conn,
		stats:   stats,
		budget:  budget,
		timeout: timeout,
		retries: retries,
		dgram:   make([]byte, 0, budget),
		rbuf:    make([]byte, udpReadBuf),
	}, nil
}

// close shuts the socket down, unblocking any in-flight read.
func (c *udpClient) close() {
	if c.closed.CompareAndSwap(false, true) {
		_ = c.conn.Close()
	}
}

// shouldTry reports whether the fast path is worth attempting: always
// while healthy, and one probe every udpProbeEvery pushes while down.
func (c *udpClient) shouldTry() bool {
	if c.down.Load() < udpDownThreshold {
		return true
	}
	return c.skips.Add(1)%udpProbeEvery == 0
}

// roundTrip sends req as a single datagram and waits for the correlated
// response, retrying on loss. ok=false means the fast path did not
// complete (oversize, socket trouble, or every attempt timed out) and the
// caller should fall back to TCP.
func (c *udpClient) roundTrip(req *request, resp *response) (ok bool) {
	if !c.shouldTry() {
		return false
	}
	if udpHeaderLen+requestWireSize(req) > c.budget {
		c.stats.noteUDPOversize()
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return false
	}
	dgram := append(c.dgram[:0], 'E', 'U', udpVersion, udpTypeRequest,
		0, 0, 0, 0, 0, 0, 0, 0) // MsgID placeholder
	dgram = appendRequest(dgram, req, codecBinary)
	c.dgram = dgram
	if len(dgram) > c.budget {
		c.stats.noteUDPOversize()
		return false
	}

	for attempt := 0; attempt <= c.retries; attempt++ {
		id := udpMsgID.Add(1)
		binary.BigEndian.PutUint64(dgram[4:udpHeaderLen], id)
		if attempt > 0 {
			c.stats.noteUDPRetry()
		}
		if _, err := c.conn.Write(dgram); err != nil {
			break // socket-level trouble: straight to TCP
		}
		c.stats.noteUDPTraffic(int64(len(dgram)), 0)
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			break
		}
	reading:
		for {
			n, err := c.conn.Read(c.rbuf)
			if err != nil {
				if c.closed.Load() {
					return false
				}
				if ne, isNet := err.(net.Error); isNet && ne.Timeout() {
					break reading // attempt timed out: retry
				}
				// Transient (e.g. ICMP port unreachable surfacing as a
				// read error on a connected socket): keep reading until
				// the deadline.
				continue
			}
			b := c.rbuf[:n]
			if n < udpHeaderLen || b[0] != 'E' || b[1] != 'U' ||
				b[2] != udpVersion || b[3] != udpTypeResponse {
				continue // noise
			}
			if binary.BigEndian.Uint64(b[4:udpHeaderLen]) != id {
				continue // stale response from an earlier attempt
			}
			c.stats.noteUDPTraffic(0, int64(n))
			if err := decodeResponse(b[udpHeaderLen:n], resp, codecBinary); err != nil {
				break reading // corrupt response: treat as loss, retry
			}
			c.down.Store(0)
			c.stats.noteUDPPush()
			return true
		}
	}
	c.down.Add(1)
	return false
}

// serveUDP answers fast-path datagrams on the server's UDP socket. Only
// single-datagram-safe, idempotent request kinds are dispatched; anything
// else is answered with an error so a misconfigured client falls back
// instead of stalling.
func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, udpReadBuf)
	wbuf := make([]byte, 0, 2048)
	var req request
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			if s.closing() {
				return
			}
			continue
		}
		if n < udpHeaderLen || buf[0] != 'E' || buf[1] != 'U' ||
			buf[2] != udpVersion || buf[3] != udpTypeRequest {
			continue
		}
		if err := decodeRequest(buf[udpHeaderLen:n], &req, codecBinary); err != nil {
			continue // garbage body: silent drop, the client will retry
		}
		var resp response
		switch req.Kind {
		case reqPushRumors, reqChecksum:
			start := time.Now()
			resp = s.dispatch(req)
			if _, observe := s.instruments(); observe != nil {
				observe("udp-"+req.Kind.kindName(), time.Since(start))
			}
		default:
			resp = response{Err: "request kind not served over UDP"}
		}
		wbuf = append(wbuf[:0], 'E', 'U', udpVersion, udpTypeResponse)
		wbuf = append(wbuf, buf[4:udpHeaderLen]...) // echo MsgID
		wbuf = appendResponse(wbuf, &resp, codecBinary)
		if len(wbuf) <= udpReadBuf {
			_, _ = conn.WriteToUDP(wbuf, raddr)
		}
	}
}
