package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// The wire protocol is a sequence of length-prefixed frames over one
// long-lived TCP connection: a 4-byte big-endian payload length followed
// by the payload, which is one request or response in the session's
// negotiated codec — the hand-rolled binary encoding of codec.go, or one
// value from a persistent gob stream (the PR 3 format, kept for rollout).
// The frame boundary lets either side bound a peer's allocation before
// reading a byte of payload.
//
// Codec negotiation: a new client opens with a 4-byte hello — the magic
// "EPG" followed by its preferred codec byte — and the server answers with
// the single codec byte both sides will use (the lower of the client's
// preference and the server's ceiling). A legacy client sends no hello;
// since every legal frame header starts with a byte <= 0x04 (the length
// cap is 64 MiB) and 'E' is 0x45, the server can peek the first bytes and
// fall back to a plain gob session without consuming them. A client
// configured for legacy mode skips the hello the same way, which keeps it
// wire-compatible with pre-negotiation daemons.

// maxWireBytes bounds a single frame; a misbehaving peer cannot make the
// decoder allocate without bound.
const maxWireBytes = 64 << 20

// frameHeaderLen is the fixed frame header size (big-endian uint32 payload
// length).
const frameHeaderLen = 4

// helloMagic opens the codec-negotiation hello. Its first byte must be
// distinguishable from a legal frame header's first byte (<= 0x04).
var helloMagic = [3]byte{'E', 'P', 'G'}

// Typed wire errors. Callers can errors.Is against these to distinguish
// protocol violations from ordinary network failures.
var (
	// ErrFrameTooLarge reports a frame whose declared payload exceeds the
	// session's limit, in either direction.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrTruncatedFrame reports a frame that ended early: the header (or a
	// length inside the payload) promised more bytes than arrived.
	ErrTruncatedFrame = errors.New("transport: truncated frame")
	// ErrFrameGarbage reports a frame whose payload was malformed or not
	// fully consumed by its decoded value — the streams have diverged.
	ErrFrameGarbage = errors.New("transport: trailing garbage in frame")
)

// frameBuffer feeds one frame's payload to the session's persistent gob
// decoder. Refilled per frame; Read never crosses a frame boundary.
type frameBuffer struct {
	buf []byte
	pos int
}

func (f *frameBuffer) Read(p []byte) (int, error) {
	if f.pos >= len(f.buf) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += n
	return n, nil
}

// ReadByte makes frameBuffer an io.ByteReader so gob reads it directly
// instead of wrapping it in a read-ahead bufio.Reader — read-ahead would
// silently drain bytes past the decoded value and break both the drained
// check and frame alignment.
func (f *frameBuffer) ReadByte() (byte, error) {
	if f.pos >= len(f.buf) {
		return 0, io.EOF
	}
	b := f.buf[f.pos]
	f.pos++
	return b, nil
}

func (f *frameBuffer) load(payload []byte) {
	f.buf = payload
	f.pos = 0
}

func (f *frameBuffer) drained() bool { return f.pos >= len(f.buf) }

// session is one framed stream over a TCP connection, used by both the
// client pool and the server handler. Not safe for concurrent use: callers
// hold a session exclusively for the duration of a request.
type session struct {
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	codec byte // codecGob .. codecBinaryMail; fixed after the handshake

	// Gob machinery, built lazily so binary sessions never pay for it.
	enc    *gob.Encoder
	encBuf bytes.Buffer // staging area: one Encode call = one frame
	dec    *gob.Decoder
	decBuf frameBuffer

	wbuf    []byte // binary encode scratch: [4-byte header | payload]
	payload []byte // reusable frame payload backing array

	header [frameHeaderLen]byte
	limit  int // per-frame payload cap

	bytesOut, bytesIn int64 // cumulative traffic on this session
}

// newSession wraps conn with the given codec. limit <= 0 selects
// maxWireBytes.
func newSession(conn net.Conn, limit int, codec byte) *session {
	if limit <= 0 {
		limit = maxWireBytes
	}
	return &session{
		conn:  conn,
		br:    bufio.NewReader(conn),
		bw:    bufio.NewWriter(conn),
		codec: codec,
		limit: limit,
	}
}

// clientHandshake sends the codec hello and adopts the server's choice.
// deadline bounds the whole exchange; zero leaves the connection unarmed.
func (s *session) clientHandshake(prefer byte, deadline time.Time) error {
	s.setDeadline(deadline)
	defer s.setDeadline(time.Time{})
	hello := [4]byte{helloMagic[0], helloMagic[1], helloMagic[2], prefer}
	if _, err := s.bw.Write(hello[:]); err != nil {
		return fmt.Errorf("transport: send codec hello: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: send codec hello: %w", err)
	}
	chosen, err := s.br.ReadByte()
	if err != nil {
		return fmt.Errorf("transport: read codec choice: %w", err)
	}
	if chosen < codecGob || chosen > codecBinaryMail || chosen > prefer {
		return fmt.Errorf("transport: server chose unexpected codec %d: %w", chosen, ErrFrameGarbage)
	}
	s.codec = chosen
	s.bytesOut += int64(len(hello))
	s.bytesIn++
	return nil
}

// serverHandshake inspects the first bytes of a fresh connection. A hello
// negotiates a codec (at most maxCodec) and is answered; anything else is
// left unconsumed and the session proceeds as legacy gob. The caller's
// read deadline bounds the wait for the first bytes.
func (s *session) serverHandshake(maxCodec byte) error {
	head, err := s.br.Peek(len(helloMagic))
	if err != nil {
		return err // closed or died before a first request
	}
	if head[0] != helloMagic[0] || head[1] != helloMagic[1] || head[2] != helloMagic[2] {
		s.codec = codecGob // legacy stream: bytes stay queued for readMsg
		return nil
	}
	if _, err := s.br.Discard(len(helloMagic)); err != nil {
		return err
	}
	prefer, err := s.br.ReadByte()
	if err != nil {
		return fmt.Errorf("transport: read codec hello: %w", ErrTruncatedFrame)
	}
	// min(client preference, server ceiling), clamped to the known range —
	// a v2 client asking for 2 gets 2 from a v4 server, and a future v9
	// client gets the highest version this server speaks.
	chosen := min(prefer, maxCodec)
	if chosen < codecGob {
		chosen = codecGob
	}
	if chosen > codecBinaryMail {
		chosen = codecBinaryMail
	}
	if err := s.bw.WriteByte(chosen); err != nil {
		return fmt.Errorf("transport: answer codec hello: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: answer codec hello: %w", err)
	}
	s.codec = chosen
	s.bytesIn += int64(len(helloMagic)) + 1
	s.bytesOut++
	return nil
}

// withDigests reports whether this session's frames carry the trailing
// cluster-digest section (codecBinaryDigest and up; gob carries digests as
// an ordinary struct field that old receivers simply ignore).
func (s *session) withDigests() bool { return codecHasDigests(s.codec) }

// withShards reports whether this session's frames carry the trailing
// shard-vector section and the peer understands the shard-scoped request
// kinds (codecBinaryShard and up).
func (s *session) withShards() bool { return codecHasShards(s.codec) }

// withMail reports whether this session may carry batched mail requests
// and their trailing telemetry section (codecBinaryMail and up).
func (s *session) withMail() bool { return codecHasMail(s.codec) }

// writeRequest ships req as one frame in the session's codec.
func (s *session) writeRequest(req *request) error {
	if s.codec >= codecBinary {
		s.wbuf = appendRequest(s.binaryFrame(), req, s.codec)
		return s.flushBinaryFrame()
	}
	return s.writeMsg(req)
}

// writeResponse ships resp as one frame in the session's codec.
func (s *session) writeResponse(resp *response) error {
	if s.codec >= codecBinary {
		s.wbuf = appendResponse(s.binaryFrame(), resp, s.codec)
		return s.flushBinaryFrame()
	}
	return s.writeMsg(resp)
}

// readRequest reads one frame into req. Every field of req is overwritten.
func (s *session) readRequest(req *request) error {
	if s.codec >= codecBinary {
		payload, err := s.readFrame()
		if err != nil {
			return err
		}
		if err := decodeRequest(payload, req, s.codec); err != nil {
			return fmt.Errorf("transport: decode request: %w", err)
		}
		return nil
	}
	*req = request{}
	return s.readMsg(req)
}

// readResponse reads one frame into resp. Every field of resp is
// overwritten.
func (s *session) readResponse(resp *response) error {
	if s.codec >= codecBinary {
		payload, err := s.readFrame()
		if err != nil {
			return err
		}
		if err := decodeResponse(payload, resp, s.codec); err != nil {
			return fmt.Errorf("transport: decode response: %w", err)
		}
		return nil
	}
	*resp = response{}
	return s.readMsg(resp)
}

// binaryFrame resets the encode scratch to an empty payload preceded by
// header space.
func (s *session) binaryFrame() []byte {
	if cap(s.wbuf) < frameHeaderLen {
		s.wbuf = make([]byte, frameHeaderLen, 512)
	}
	return s.wbuf[:frameHeaderLen]
}

// flushBinaryFrame stamps the header over s.wbuf and writes the frame in
// one call.
func (s *session) flushBinaryFrame() error {
	payload := len(s.wbuf) - frameHeaderLen
	if payload > s.limit {
		return fmt.Errorf("transport: outgoing frame of %d bytes: %w", payload, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(s.wbuf[:frameHeaderLen], uint32(payload))
	if _, err := s.bw.Write(s.wbuf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush frame: %w", err)
	}
	s.bytesOut += int64(len(s.wbuf))
	return nil
}

// readFrame reads one frame and returns its payload, valid until the next
// readFrame on this session.
func (s *session) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(s.br, s.header[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: read frame header: %w", ErrTruncatedFrame)
		}
		return nil, err // clean EOF or network error
	}
	n := int(binary.BigEndian.Uint32(s.header[:]))
	if n > s.limit {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	payload := s.payload[:n]
	if _, err := io.ReadFull(s.br, payload); err != nil {
		return nil, fmt.Errorf("transport: read frame payload: %w", ErrTruncatedFrame)
	}
	s.bytesIn += int64(frameHeaderLen + n)
	return payload, nil
}

// writeMsg encodes v on the persistent gob stream and ships it as one
// frame. The encode buffer and bufio writer are reused across calls, so a
// steady-state request allocates no frame machinery.
func (s *session) writeMsg(v any) error {
	if s.enc == nil {
		s.enc = gob.NewEncoder(&s.encBuf)
	}
	s.encBuf.Reset()
	if err := s.enc.Encode(v); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	payload := s.encBuf.Bytes()
	if len(payload) > s.limit {
		return fmt.Errorf("transport: outgoing frame of %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(s.header[:], uint32(len(payload)))
	if _, err := s.bw.Write(s.header[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := s.bw.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush frame: %w", err)
	}
	s.bytesOut += int64(frameHeaderLen + len(payload))
	return nil
}

// readMsg reads one frame and decodes it into v through the persistent gob
// stream. The payload buffer is reused across calls.
func (s *session) readMsg(v any) error {
	payload, err := s.readFrame()
	if err != nil {
		return err
	}
	if s.dec == nil {
		s.dec = gob.NewDecoder(&s.decBuf)
	}
	s.decBuf.load(payload)
	if err := s.dec.Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	if !s.decBuf.drained() {
		return ErrFrameGarbage
	}
	return nil
}

// setDeadline bounds the next request/response pair on the wire; zero
// clears it.
func (s *session) setDeadline(t time.Time) { _ = s.conn.SetDeadline(t) }

// Close closes the underlying connection.
func (s *session) Close() error { return s.conn.Close() }
