package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// The wire protocol is a sequence of length-prefixed frames over one
// long-lived TCP connection: a 4-byte big-endian payload length followed by
// the payload, which is exactly one value from a persistent gob stream.
// Because the encoder and decoder live as long as the connection, gob type
// descriptors cross the wire once per session instead of once per request,
// and the frame boundary lets either side bound a peer's allocation before
// reading a byte of payload.

// maxWireBytes bounds a single frame; a misbehaving peer cannot make the
// decoder allocate without bound.
const maxWireBytes = 64 << 20

// frameHeaderLen is the fixed frame header size (big-endian uint32 payload
// length).
const frameHeaderLen = 4

// Typed wire errors. Callers can errors.Is against these to distinguish
// protocol violations from ordinary network failures.
var (
	// ErrFrameTooLarge reports a frame whose declared payload exceeds the
	// session's limit, in either direction.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrTruncatedFrame reports a connection that died mid-frame: the
	// header promised more payload bytes than arrived.
	ErrTruncatedFrame = errors.New("transport: truncated frame")
	// ErrFrameGarbage reports a frame whose payload was not fully consumed
	// by its gob value — trailing bytes mean the streams have diverged.
	ErrFrameGarbage = errors.New("transport: trailing garbage in frame")
)

// frameBuffer feeds one frame's payload to the session's persistent gob
// decoder. Refilled per frame; Read never crosses a frame boundary.
type frameBuffer struct {
	buf []byte
	pos int
}

func (f *frameBuffer) Read(p []byte) (int, error) {
	if f.pos >= len(f.buf) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += n
	return n, nil
}

// ReadByte makes frameBuffer an io.ByteReader so gob reads it directly
// instead of wrapping it in a read-ahead bufio.Reader — read-ahead would
// silently drain bytes past the decoded value and break both the drained
// check and frame alignment.
func (f *frameBuffer) ReadByte() (byte, error) {
	if f.pos >= len(f.buf) {
		return 0, io.EOF
	}
	b := f.buf[f.pos]
	f.pos++
	return b, nil
}

func (f *frameBuffer) load(payload []byte) {
	f.buf = payload
	f.pos = 0
}

func (f *frameBuffer) drained() bool { return f.pos >= len(f.buf) }

// session is one framed gob stream over a TCP connection, used by both the
// client pool and the server handler. Not safe for concurrent use: callers
// hold a session exclusively for the duration of a request.
type session struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	enc    *gob.Encoder
	encBuf bytes.Buffer // staging area: one Encode call = one frame

	dec     *gob.Decoder
	decBuf  frameBuffer
	payload []byte // reusable frame payload backing array

	header [frameHeaderLen]byte
	limit  int // per-frame payload cap

	bytesOut, bytesIn int64 // cumulative traffic on this session
}

// newSession wraps conn. limit <= 0 selects maxWireBytes.
func newSession(conn net.Conn, limit int) *session {
	if limit <= 0 {
		limit = maxWireBytes
	}
	s := &session{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), limit: limit}
	s.enc = gob.NewEncoder(&s.encBuf)
	s.dec = gob.NewDecoder(&s.decBuf)
	return s
}

// writeMsg encodes v on the persistent gob stream and ships it as one
// frame. The encode buffer and bufio writer are reused across calls, so a
// steady-state request allocates no frame machinery.
func (s *session) writeMsg(v any) error {
	s.encBuf.Reset()
	if err := s.enc.Encode(v); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	payload := s.encBuf.Bytes()
	if len(payload) > s.limit {
		return fmt.Errorf("transport: outgoing frame of %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(s.header[:], uint32(len(payload)))
	if _, err := s.bw.Write(s.header[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := s.bw.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush frame: %w", err)
	}
	s.bytesOut += int64(frameHeaderLen + len(payload))
	return nil
}

// readMsg reads one frame and decodes it into v through the persistent gob
// stream. The payload buffer is reused across calls.
func (s *session) readMsg(v any) error {
	if _, err := io.ReadFull(s.br, s.header[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("transport: read frame header: %w", ErrTruncatedFrame)
		}
		return err // clean EOF or network error
	}
	n := int(binary.BigEndian.Uint32(s.header[:]))
	if n > s.limit {
		return fmt.Errorf("transport: incoming frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	payload := s.payload[:n]
	if _, err := io.ReadFull(s.br, payload); err != nil {
		return fmt.Errorf("transport: read frame payload: %w", ErrTruncatedFrame)
	}
	s.bytesIn += int64(frameHeaderLen + n)
	s.decBuf.load(payload)
	if err := s.dec.Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	if !s.decBuf.drained() {
		return ErrFrameGarbage
	}
	return nil
}

// setDeadline bounds the next request/response pair on the wire; zero
// clears it.
func (s *session) setDeadline(t time.Time) { _ = s.conn.SetDeadline(t) }

// Close closes the underlying connection.
func (s *session) Close() error { return s.conn.Close() }
