package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireStats aggregates client-side pool and wire traffic counters. One
// instance is typically shared by every peer a process dials, so it
// describes the process's whole outbound gossip surface. All methods are
// safe for concurrent use and nil-safe: a nil *WireStats records nothing.
type WireStats struct {
	dials, redials, reuses   atomic.Int64
	open                     atomic.Int64
	bytesSent, bytesReceived atomic.Int64
	exchanges                atomic.Int64

	// Codec accounting: sessions by negotiated codec and request round
	// trips by codec.
	sessionsGob, sessionsBinary atomic.Int64
	msgsGob, msgsBinary         atomic.Int64

	// Shard-vector anti-entropy accounting (codec v4): exchanges that
	// converged via the narrow path, diverged shards they repaired, and
	// attempts that fell back to the global peel walk.
	shardVecExchanges, shardVecShards, shardVecDowngrades atomic.Int64

	// Batched-mail accounting (codec v5): outbox drains shipped as one
	// reqMailBatch frame, the entries they carried, and entries that fell
	// back to per-entry round trips against pre-v5 peers.
	mailBatches, mailBatchEntries, mailFallbackEntries atomic.Int64

	// UDP fast-path accounting (see udp.go).
	udpPushes, udpRetries, udpFallbacks, udpOversize atomic.Int64
	udpBytesSent, udpBytesReceived                   atomic.Int64

	// onExchange, when installed, receives one call per completed
	// anti-entropy exchange with the entries and bytes moved per direction
	// — the feed for entries-per-exchange and bytes-per-exchange
	// histograms.
	onExchange atomic.Pointer[func(entriesSent, entriesReceived int, bytesOut, bytesIn int64)]
}

// WireSnapshot is a point-in-time copy of WireStats, JSON-tagged for admin
// surfacing (gossipd's WIRE command).
type WireSnapshot struct {
	// Dials counts fresh TCP connections established; Redials the subset
	// that replaced a pooled connection found dead mid-request; Reuses the
	// requests that picked up an already-open pooled connection.
	Dials   int64 `json:"dials"`
	Redials int64 `json:"redials"`
	Reuses  int64 `json:"reuses"`
	// OpenConns is the number of currently open client connections.
	OpenConns int64 `json:"open_conns"`
	// BytesSent and BytesReceived count framed wire traffic, headers
	// included.
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
	// Exchanges counts completed anti-entropy conversations.
	Exchanges int64 `json:"exchanges"`
	// SessionsGob and SessionsBinary count client sessions by the codec the
	// handshake settled on; MsgsGob and MsgsBinary count request round trips
	// by the codec that framed them.
	SessionsGob    int64 `json:"sessions_gob"`
	SessionsBinary int64 `json:"sessions_binary"`
	MsgsGob        int64 `json:"msgs_gob"`
	MsgsBinary     int64 `json:"msgs_binary"`
	// Shard-vector counters: anti-entropy exchanges that converged via the
	// per-shard narrow path, the diverged shards those exchanges repaired,
	// and attempts that downgraded to the global peel walk.
	ShardVecExchanges  int64 `json:"shardvec_exchanges"`
	ShardVecShards     int64 `json:"shardvec_shards"`
	ShardVecDowngrades int64 `json:"shardvec_downgrades"`
	// Batched-mail counters: outbox drains shipped as single mail-batch
	// frames, the entries those frames carried, and entries that degraded
	// to per-entry round trips against pre-v5 peers.
	MailBatches         int64 `json:"mail_batches"`
	MailBatchEntries    int64 `json:"mail_batch_entries"`
	MailFallbackEntries int64 `json:"mail_fallback_entries"`
	// UDP fast-path counters: pushes completed over UDP, datagram retries,
	// pushes that fell back to pooled TCP, pushes skipped as over the
	// datagram budget, and raw datagram traffic.
	UDPPushes        int64 `json:"udp_pushes"`
	UDPRetries       int64 `json:"udp_retries"`
	UDPFallbacks     int64 `json:"udp_fallbacks"`
	UDPOversize      int64 `json:"udp_oversize"`
	UDPBytesSent     int64 `json:"udp_bytes_sent"`
	UDPBytesReceived int64 `json:"udp_bytes_received"`
}

// Snapshot returns a copy of the counters. A nil receiver yields zeros.
func (w *WireStats) Snapshot() WireSnapshot {
	if w == nil {
		return WireSnapshot{}
	}
	return WireSnapshot{
		Dials:               w.dials.Load(),
		Redials:             w.redials.Load(),
		Reuses:              w.reuses.Load(),
		OpenConns:           w.open.Load(),
		BytesSent:           w.bytesSent.Load(),
		BytesReceived:       w.bytesReceived.Load(),
		Exchanges:           w.exchanges.Load(),
		SessionsGob:         w.sessionsGob.Load(),
		SessionsBinary:      w.sessionsBinary.Load(),
		MsgsGob:             w.msgsGob.Load(),
		MsgsBinary:          w.msgsBinary.Load(),
		ShardVecExchanges:   w.shardVecExchanges.Load(),
		ShardVecShards:      w.shardVecShards.Load(),
		ShardVecDowngrades:  w.shardVecDowngrades.Load(),
		MailBatches:         w.mailBatches.Load(),
		MailBatchEntries:    w.mailBatchEntries.Load(),
		MailFallbackEntries: w.mailFallbackEntries.Load(),
		UDPPushes:           w.udpPushes.Load(),
		UDPRetries:          w.udpRetries.Load(),
		UDPFallbacks:        w.udpFallbacks.Load(),
		UDPOversize:         w.udpOversize.Load(),
		UDPBytesSent:        w.udpBytesSent.Load(),
		UDPBytesReceived:    w.udpBytesReceived.Load(),
	}
}

// SetExchangeObserver installs fn, called once per completed anti-entropy
// exchange with the entries and bytes moved in each direction; nil removes
// it.
func (w *WireStats) SetExchangeObserver(fn func(entriesSent, entriesReceived int, bytesOut, bytesIn int64)) {
	if w == nil {
		return
	}
	if fn == nil {
		w.onExchange.Store(nil)
		return
	}
	w.onExchange.Store(&fn)
}

func (w *WireStats) noteDial(redial bool) {
	if w == nil {
		return
	}
	w.dials.Add(1)
	if redial {
		w.redials.Add(1)
	}
	w.open.Add(1)
}

func (w *WireStats) noteReuse() {
	if w != nil {
		w.reuses.Add(1)
	}
}

func (w *WireStats) noteClose() {
	if w != nil {
		w.open.Add(-1)
	}
}

func (w *WireStats) noteTraffic(out, in int64) {
	if w == nil {
		return
	}
	w.bytesSent.Add(out)
	w.bytesReceived.Add(in)
}

func (w *WireStats) noteSession(codec byte) {
	if w == nil {
		return
	}
	if codec >= codecBinary {
		w.sessionsBinary.Add(1)
	} else {
		w.sessionsGob.Add(1)
	}
}

func (w *WireStats) noteMsg(codec byte) {
	if w == nil {
		return
	}
	if codec >= codecBinary {
		w.msgsBinary.Add(1)
	} else {
		w.msgsGob.Add(1)
	}
}

func (w *WireStats) noteShardVec(shards int) {
	if w == nil {
		return
	}
	w.shardVecExchanges.Add(1)
	w.shardVecShards.Add(int64(shards))
}

func (w *WireStats) noteShardVecDowngrade() {
	if w != nil {
		w.shardVecDowngrades.Add(1)
	}
}

func (w *WireStats) noteMailBatch(entries int) {
	if w == nil {
		return
	}
	w.mailBatches.Add(1)
	w.mailBatchEntries.Add(int64(entries))
}

func (w *WireStats) noteMailFallback(entries int) {
	if w != nil {
		w.mailFallbackEntries.Add(int64(entries))
	}
}

func (w *WireStats) noteUDPPush() {
	if w != nil {
		w.udpPushes.Add(1)
	}
}

func (w *WireStats) noteUDPRetry() {
	if w != nil {
		w.udpRetries.Add(1)
	}
}

func (w *WireStats) noteUDPFallback() {
	if w != nil {
		w.udpFallbacks.Add(1)
	}
}

func (w *WireStats) noteUDPOversize() {
	if w != nil {
		w.udpOversize.Add(1)
	}
}

func (w *WireStats) noteUDPTraffic(out, in int64) {
	if w == nil {
		return
	}
	if out > 0 {
		w.udpBytesSent.Add(out)
	}
	if in > 0 {
		w.udpBytesReceived.Add(in)
	}
}

func (w *WireStats) noteExchange(entriesSent, entriesReceived int, bytesOut, bytesIn int64) {
	if w == nil {
		return
	}
	w.exchanges.Add(1)
	if fn := w.onExchange.Load(); fn != nil {
		(*fn)(entriesSent, entriesReceived, bytesOut, bytesIn)
	}
}

// pool keeps persistent framed sessions to one peer address: dial once,
// reuse across requests, discard on error, transparently redial when a
// pooled connection turns out to be dead. Bounded: at most size idle
// sessions are retained; requests beyond that dial and close per use.
type pool struct {
	addr    string
	timeout time.Duration // dial timeout and per-request deadline
	size    int           // max idle sessions retained (< 0: no reuse)
	prefer  byte          // codec preference sent in the hello
	legacy  bool          // skip the hello entirely (pre-negotiation wire)
	stats   *WireStats

	// codec records the codec the most recent handshake settled on (zero
	// until the first dial). The shard-vector path consults it to skip v4
	// request kinds against peers that cannot negotiate them.
	codec atomic.Uint32

	mu     sync.Mutex
	idle   []*session
	closed bool
}

// shardCapable reports whether the last negotiated session codec supports
// the shard-vector request kinds. False before the first dial: the caller's
// round-0 sync request always precedes a shard-vector attempt, so by the
// time it matters a handshake has happened.
func (p *pool) shardCapable() bool {
	return codecHasShards(byte(p.codec.Load()))
}

// mailCapable reports whether the last negotiated session codec supports
// batched mail requests. False before the first dial; MailBatch primes the
// pool with one per-entry round trip before trusting the answer.
func (p *pool) mailCapable() bool {
	return codecHasMail(byte(p.codec.Load()))
}

func newPool(addr string, size int, timeout time.Duration, prefer byte, legacy bool, stats *WireStats) *pool {
	return &pool{addr: addr, size: size, timeout: timeout, prefer: prefer, legacy: legacy, stats: stats}
}

// get returns a session ready for one request. reused reports whether it
// came from the idle set (and therefore may be stale).
func (p *pool) get() (s *session, reused bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 && !p.closed {
		s = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.stats.noteReuse()
		return s, true, nil
	}
	p.mu.Unlock()
	return p.dial(false)
}

// dial opens a fresh session. redial marks it as a replacement for a dead
// pooled connection, for stats attribution.
func (p *pool) dial(redial bool) (*session, bool, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.timeout)
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	p.stats.noteDial(redial)
	s := newSession(conn, maxWireBytes, codecGob)
	if !p.legacy {
		if err := s.clientHandshake(p.prefer, time.Now().Add(p.timeout)); err != nil {
			p.discard(s)
			return nil, false, err
		}
	}
	p.codec.Store(uint32(s.codec))
	p.stats.noteSession(s.codec)
	return s, false, nil
}

// put returns a healthy session to the idle set, or closes it when the
// pool is full, closed, or reuse is disabled.
func (p *pool) put(s *session) {
	s.setDeadline(time.Time{})
	p.mu.Lock()
	if !p.closed && p.size >= 0 && len(p.idle) < max(p.size, 1) {
		p.idle = append(p.idle, s)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.discard(s)
}

// discard closes a session that failed or cannot be pooled.
func (p *pool) discard(s *session) {
	_ = s.Close()
	p.stats.noteClose()
}

// close drops every idle session and stops future pooling.
func (p *pool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, s := range idle {
		p.discard(s)
	}
}

// openIdle reports the number of idle pooled sessions (for tests).
func (p *pool) openIdle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// roundTrip runs one request/response over a pooled session with a
// per-request deadline, returning the framed bytes moved in each
// direction. A request that fails on a reused session is retried once on a
// fresh connection: the failure usually means the remote restarted or
// idled the connection out, and every request in this protocol is
// idempotent (re-applying an entry is a no-op merge).
func (p *pool) roundTrip(req *request, resp *response) (bytesOut, bytesIn int64, err error) {
	s, reused, err := p.get()
	if err != nil {
		return 0, 0, err
	}
	bytesOut, bytesIn, err = p.do(s, req, resp)
	if err != nil && reused {
		p.discard(s)
		var o, i int64
		if s, _, err = p.dial(true); err != nil {
			return bytesOut, bytesIn, err
		}
		o, i, err = p.do(s, req, resp)
		bytesOut += o
		bytesIn += i
	}
	if err != nil {
		p.discard(s)
		return bytesOut, bytesIn, err
	}
	p.put(s)
	return bytesOut, bytesIn, nil
}

// do performs one request/response on s under the pool's deadline, framed
// in the session's negotiated codec.
func (p *pool) do(s *session, req *request, resp *response) (bytesOut, bytesIn int64, err error) {
	if p.timeout > 0 {
		s.setDeadline(time.Now().Add(p.timeout))
	}
	startOut, startIn := s.bytesOut, s.bytesIn
	err = s.writeRequest(req)
	if err == nil {
		err = s.readResponse(resp)
	}
	bytesOut, bytesIn = s.bytesOut-startOut, s.bytesIn-startIn
	p.stats.noteTraffic(bytesOut, bytesIn)
	p.stats.noteMsg(s.codec)
	return bytesOut, bytesIn, err
}
