// Package transport provides the communication substrates the epidemic
// algorithms run over: a store-and-forward in-memory mail system with the
// failure modes §1.2 assumes (queue overflow, silent loss, delayed
// delivery), and a TCP transport that lets real node.Node replicas gossip
// across machines — pooled persistent sessions framed in a hand-rolled
// binary codec (codec.go; gob survives behind a negotiated version byte
// for mixed-version rollout), with a UDP fast path for single-datagram
// rumor pushes (udp.go). Network direct mail rides the same pooled
// sessions and codec as every other request kind, so §1.2 mail pays no
// separate encode path.
package transport

import (
	"errors"
	"math/rand"
	"sync"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Message is one queued mail item.
type Message struct {
	From, To timestamp.SiteID
	Entry    store.Entry
}

// MemoryMail is an in-memory PostMail substrate: per-destination bounded
// queues, optional random loss, and explicit delivery pumping so tests and
// simulations control timing. It models §1.2's mail semantics: "it queues
// messages so the sender isn't delayed ... messages may be discarded when
// queues overflow".
type MemoryMail struct {
	mu       sync.Mutex
	rng      *rand.Rand
	queueCap int
	lossRate float64
	queues   map[timestamp.SiteID][]Message

	// Stats
	posted, dropped, delivered int
}

// ErrQueueOverflow is returned by PostMail when the destination queue is
// full.
var ErrQueueOverflow = errors.New("transport: mail queue overflow")

// NewMemoryMail builds a mail system. queueCap bounds each destination
// queue (0 = unbounded); lossRate silently drops that fraction of posted
// messages.
func NewMemoryMail(queueCap int, lossRate float64, seed int64) *MemoryMail {
	return &MemoryMail{
		rng:      rand.New(rand.NewSource(seed)),
		queueCap: queueCap,
		lossRate: lossRate,
		queues:   make(map[timestamp.SiteID][]Message),
	}
}

// Post queues a message for delivery. Loss is silent (nil error); queue
// overflow is reported, matching the paper's "PostMail can fail" model.
func (m *MemoryMail) Post(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.posted++
	if m.lossRate > 0 && m.rng.Float64() < m.lossRate {
		m.dropped++
		return nil
	}
	q := m.queues[msg.To]
	if m.queueCap > 0 && len(q) >= m.queueCap {
		m.dropped++
		return ErrQueueOverflow
	}
	m.queues[msg.To] = append(q, msg)
	return nil
}

// Drain removes and returns all queued mail for site.
func (m *MemoryMail) Drain(site timestamp.SiteID) []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[site]
	delete(m.queues, site)
	m.delivered += len(q)
	return q
}

// QueueLen returns the number of messages waiting for site.
func (m *MemoryMail) QueueLen(site timestamp.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[site])
}

// Stats returns (posted, dropped, delivered) counts.
func (m *MemoryMail) Stats() (posted, dropped, delivered int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.posted, m.dropped, m.delivered
}

// SiteMailer binds a MemoryMail to one sending site as a core.Mailer.
type SiteMailer struct {
	Mail *MemoryMail
	From timestamp.SiteID
}

// PostMail implements core.Mailer.
func (s SiteMailer) PostMail(to timestamp.SiteID, e store.Entry) error {
	return s.Mail.Post(Message{From: s.From, To: to, Entry: e})
}
