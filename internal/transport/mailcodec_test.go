package transport

import (
	"errors"
	"reflect"
	"testing"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// mailRequests are field shapes specific to the codec-v5 mail section:
// batched mail with engine telemetry, and the zero section every other
// kind carries on a v5 session.
func mailRequests() []request {
	return []request{
		{
			Kind: reqMailBatch,
			Entries: []store.Entry{
				{Key: "a", Value: store.Value("1"), Stamp: timestamp.T{Time: 1, Site: 1}},
				{Key: "b", Value: nil, Stamp: timestamp.T{Time: 2, Site: 1, Seq: 3}},
			},
			Hops:            []trace.Hop{{Parent: 1, Count: 2, Valid: true}, {}},
			MailQueuedNanos: 1 << 40,
			MailCoalesced:   7,
		},
		{Kind: reqMailBatch, MailQueuedNanos: -1, MailCoalesced: 0},
		{Kind: reqChecksum, Tau1: 42}, // empty mail section on v5
	}
}

// TestCodecMailRoundTrip runs the mail shapes plus the whole pre-v5 table
// through a codecBinaryMail session encode/decode.
func TestCodecMailRoundTrip(t *testing.T) {
	all := append(mailRequests(), append(shardRequests(), codecRequests()...)...)
	for i, req := range all {
		payload := appendRequest(nil, &req, codecBinaryMail)
		got := request{MailQueuedNanos: 99, MailCoalesced: 99}
		if err := decodeRequest(payload, &got, codecBinaryMail); err != nil {
			t.Fatalf("request case %d: decode: %v", i, err)
		}
		want := req
		normalizeShardReq(&want)
		normalizeShardReq(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("request case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Responses gain no v5 section; the whole table must still round-trip
	// on a v5 session.
	for i, resp := range append(shardResponses(), codecResponses()...) {
		payload := appendResponse(nil, &resp, codecBinaryMail)
		var got response
		if err := decodeResponse(payload, &got, codecBinaryMail); err != nil {
			t.Fatalf("response case %d: decode: %v", i, err)
		}
		want := resp
		normalizeShardResp(&want)
		normalizeShardResp(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("response case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestCodecMailSectionGatedByVersion pins the downgrade semantics: a pre-v5
// encode drops the telemetry fields (they never reach an old peer), and a
// pre-v5 frame decoded as such leaves them zero even in a dirty target.
func TestCodecMailSectionGatedByVersion(t *testing.T) {
	req := mailRequests()[0]
	for _, codec := range []byte{codecBinary, codecBinaryDigest, codecBinaryShard} {
		payload := appendRequest(nil, &req, codec)
		got := request{MailQueuedNanos: 99, MailCoalesced: 99}
		if err := decodeRequest(payload, &got, codec); err != nil {
			t.Fatalf("codec %d: decode: %v", codec, err)
		}
		if got.MailQueuedNanos != 0 || got.MailCoalesced != 0 {
			t.Errorf("codec %d: mail section leaked through: %+v", codec, got)
		}
	}
}

// TestCodecMailTruncationEveryPrefix chops v5 payloads at every length:
// typed errors only, never a panic or a false success.
func TestCodecMailTruncationEveryPrefix(t *testing.T) {
	for i, req := range mailRequests() {
		payload := appendRequest(nil, &req, codecBinaryMail)
		for n := 0; n < len(payload); n++ {
			var got request
			err := decodeRequest(payload[:n], &got, codecBinaryMail)
			if err == nil {
				t.Fatalf("case %d: decode of %d/%d-byte prefix succeeded", i, n, len(payload))
			}
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("case %d: prefix %d: untyped error %v", i, n, err)
			}
		}
	}
}

// TestCodecMailBatchForgedEntryCount hand-builds a v5 mail-batch frame
// whose entry count promises far more entries than the frame holds; the
// count-vs-remaining check must refuse it before allocating.
func TestCodecMailBatchForgedEntryCount(t *testing.T) {
	var b []byte
	b = append(b, byte(reqMailBatch))
	b = appendUint32(b, 1)
	b = appendUint64(b, 0)
	b = appendVarint(b, 0) // Now
	b = appendVarint(b, 0) // Tau
	b = appendVarint(b, 0) // Tau1
	b = appendStamp(b, timestamp.T{})
	b = appendVarint(b, 0)      // Limit
	b = appendUvarint(b, 1<<40) // forged entry count
	var got request
	if err := decodeRequest(b, &got, codecBinaryMail); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("forged mail-batch entry count: err = %v, want ErrTruncatedFrame", err)
	}
}
