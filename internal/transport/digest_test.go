package transport

import (
	"net"
	"reflect"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/timestamp"
)

func sampleDigests() []cluster.Digest {
	return []cluster.Digest{
		{
			Site: 1, Stamp: 1000, StartedAt: 10,
			StoreKeys: 42, Checksum: 0xdeadbeefcafef00d,
			HotRumors: 3, Peers: 2, Members: 5,
			AERuns: 100, RumorRuns: 200,
			WireMsgsBinary: 17, WireMsgsGob: 1, UDPPushes: 9, UDPFallbacks: 2,
			Residue: 0.25, TLastSeconds: 1.5, LastAE: 950,
			AntiEntropy: cluster.LatencySummary{Count: 100, P50: 0.012, P99: 0.3},
			Rumor:       cluster.LatencySummary{Count: 200, P50: 0.004, P99: 0.05},
		},
		{Site: 2, Stamp: 900}, // mostly-zero digest must survive too
	}
}

// TestDigestCodecRoundTrip proves the trailing digest section encodes and
// decodes exactly, and that it is absent (not just empty) on v2 frames.
func TestDigestCodecRoundTrip(t *testing.T) {
	digests := sampleDigests()
	req := request{Kind: reqSync, From: 1, Checksum: 7, Digests: digests}
	var gotReq request
	if err := decodeRequest(appendRequest(nil, &req, codecBinaryDigest), &gotReq, codecBinaryDigest); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq.Digests, digests) {
		t.Errorf("request digests = %+v", gotReq.Digests)
	}

	resp := response{Checksum: 9, Digests: digests}
	var gotResp response
	if err := decodeResponse(appendResponse(nil, &resp, codecBinaryDigest), &gotResp, codecBinaryDigest); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp.Digests, digests) {
		t.Errorf("response digests = %+v", gotResp.Digests)
	}

	// A v2 frame never carries the section: encoding with withDigests=false
	// must byte-match a digest-free request.
	bare := request{Kind: reqSync, From: 1, Checksum: 7}
	withField := appendRequest(nil, &req, codecBinary)
	without := appendRequest(nil, &bare, codecBinary)
	if string(withField) != string(without) {
		t.Error("withDigests=false leaked digest bytes onto the frame")
	}

	// An empty section costs exactly one byte.
	empty := request{Kind: reqSync, From: 1, Checksum: 7}
	v2 := appendRequest(nil, &empty, codecBinary)
	v3 := appendRequest(nil, &empty, codecBinaryDigest)
	if len(v3) != len(v2)+1 {
		t.Errorf("empty digest section = %d bytes, want 1", len(v3)-len(v2))
	}
}

// TestDigestSectionTruncation checks the decoder latches a typed error on
// every truncation point of the digest section.
func TestDigestSectionTruncation(t *testing.T) {
	req := request{Kind: reqSync, Digests: sampleDigests()}
	payload := appendRequest(nil, &req, codecBinaryDigest)
	var got request
	for n := len(payload) - 1; n >= 0; n-- {
		if err := decodeRequest(payload[:n], &got, codecBinaryDigest); err == nil {
			t.Fatalf("truncated payload at %d bytes decoded cleanly", n)
		}
	}
}

// TestDigestNegotiationDowngrade drives a v3-preferring client against a
// v2-ceiling server at the session level: the pair settles on plain binary
// and digest-bearing requests cross the wire with the section stripped.
func TestDigestNegotiationDowngrade(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	cs := newSession(client, 0, codecGob)
	ss := newSession(server, 0, codecGob)

	done := make(chan error, 1)
	go func() { done <- ss.serverHandshake(codecBinary) }()
	if err := cs.clientHandshake(codecBinaryDigest, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if cs.codec != codecBinary || ss.codec != codecBinary {
		t.Fatalf("negotiated %d/%d, want both %d", cs.codec, ss.codec, codecBinary)
	}

	req := request{Kind: reqChecksum, Tau1: 5, Digests: sampleDigests()}
	go func() { done <- cs.writeRequest(&req) }()
	var got request
	if err := ss.readRequest(&got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Digests != nil {
		t.Errorf("digests crossed a v2 session: %+v", got.Digests)
	}
	if got.Kind != reqChecksum || got.Tau1 != 5 {
		t.Errorf("payload corrupted on v2 session: %+v", got)
	}
}

// TestDigestPiggybackOverTCP is the end-to-end wire property: two nodes
// with digest directories exchange views through ordinary anti-entropy and
// rumor-pull calls, no dedicated digest requests.
func TestDigestPiggybackOverTCP(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)

	serverDir := cluster.NewDirectory(1, 0)
	serverDir.SetSelf(cluster.Digest{Stamp: 100, StoreKeys: 11})
	serverNode, err := node.New(node.Config{
		Site:  1,
		Clock: src.ClockAt(1),
		Rumor: core.RumorConfig{K: 3, Counter: true, Mode: core.PushPull},
		Resolve: core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40,
		},
		Digests: serverDir,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(serverNode, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientDir := cluster.NewDirectory(2, 0)
	clientDir.SetSelf(cluster.Digest{Stamp: 200, StoreKeys: 22})
	// A third site's digest must relay through the exchange too.
	clientDir.Merge([]cluster.Digest{{Site: 3, Stamp: 50}})

	peer := NewTCPPeerWith(1, srv.Addr(), PeerOptions{Digests: clientDir})
	defer peer.Close()

	clientNode := wireNode(t, 2, src)
	cfg := core.ResolveConfig{Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40}
	if _, err := peer.AntiEntropy(cfg, clientNode.Store(), nil); err != nil {
		t.Fatal(err)
	}

	if dg, ok := serverDir.Get(2); !ok || dg.Stamp != 200 || dg.StoreKeys != 22 {
		t.Errorf("server view of site 2 = %+v ok=%v", dg, ok)
	}
	if dg, ok := serverDir.Get(3); !ok || dg.Stamp != 50 {
		t.Errorf("server missed relayed site 3 digest: %+v ok=%v", dg, ok)
	}
	if dg, ok := clientDir.Get(1); !ok || dg.Stamp != 100 || dg.StoreKeys != 11 {
		t.Errorf("client view of site 1 = %+v ok=%v", dg, ok)
	}

	// Freshen the server's digest; a rumor pull must carry the update.
	serverDir.SetSelf(cluster.Digest{Stamp: 300, StoreKeys: 12})
	if _, _, err := peer.PullRumors(); err != nil {
		t.Fatal(err)
	}
	if dg, _ := clientDir.Get(1); dg.Stamp != 300 {
		t.Errorf("rumor pull did not refresh site 1 digest: %+v", dg)
	}
}

// TestDigestsDisabledZeroOverhead: with no directories configured, the
// request and response carry nil digest slices and conversations work
// exactly as before.
func TestDigestsDisabledZeroOverhead(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	n := wireNode(t, 1, src)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := NewTCPPeer(1, srv.Addr())
	defer peer.Close()
	clientNode := wireNode(t, 2, src)
	cfg := core.ResolveConfig{Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40}
	if _, err := peer.AntiEntropy(cfg, clientNode.Store(), nil); err != nil {
		t.Fatal(err)
	}
	if n.Digests().Len() != 0 {
		t.Error("digests materialised with the observatory off")
	}
}
