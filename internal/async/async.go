// Package async is an event-driven (asynchronous) simulator for the
// epidemic protocols. The paper analyses synchronous cycles — "each site
// executes the algorithm once per period" — but a real deployment has
// unsynchronised periods, jitter, and message latency. This simulator
// replays the single-update spread experiments under those conditions, so
// the repository can check that the synchronous results (Tables 1–3)
// survive asynchrony.
//
// Time is continuous; each site wakes at independent jittered intervals
// and runs one exchange. Messages (rumor pushes, their feedback, and
// anti-entropy transfers) take a configurable one-way latency. Delays are
// reported in units of the mean period, which corresponds to one
// synchronous cycle.
package async

import (
	"container/heap"
	"fmt"
	"math/rand"

	"epidemic/internal/core"
	"epidemic/internal/spatial"
)

// Config parameterises an asynchronous spread run.
type Config struct {
	// Rumor selects the variant. Supported modes: Push and PushPull for
	// rumor mongering. (Pull and anti-entropy use SpreadAntiEntropyAsync.)
	Rumor core.RumorConfig
	// MeanPeriod is the mean time between one site's successive
	// exchanges; it is the unit all delays are reported in.
	MeanPeriod float64
	// Jitter spreads each period uniformly over
	// [MeanPeriod·(1−Jitter), MeanPeriod·(1+Jitter)]. 0 ≤ Jitter < 1.
	Jitter float64
	// Latency is the one-way message delay, as a fraction of MeanPeriod.
	Latency float64
	// MaxTime bounds the run, in mean periods; 0 means 1000.
	MaxTime float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Rumor.Validate(); err != nil {
		return err
	}
	if c.Rumor.Mode == core.Pull {
		return fmt.Errorf("async: pull rumor mongering is not modelled; use Push or PushPull")
	}
	if c.MeanPeriod <= 0 {
		return fmt.Errorf("async: MeanPeriod must be positive")
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("async: Jitter must be in [0,1)")
	}
	if c.Latency < 0 {
		return fmt.Errorf("async: Latency must be >= 0")
	}
	return nil
}

// Result reports an asynchronous spread, with delays in mean periods.
type Result struct {
	N           int
	Residue     float64
	Traffic     float64
	TAve        float64
	TLast       float64
	Converged   bool
	UpdatesSent int
}

// Event kinds.
type eventKind uint8

const (
	evWake eventKind = iota + 1 // site initiates an exchange
	evPush                      // rumor arrives at a recipient
	evAck                       // feedback arrives back at the sender
)

type event struct {
	at   float64
	kind eventKind
	site int32 // acting site (wake), recipient (push), sender (ack)
	from int32 // push: sender; ack: recipient
	// needed: on a contact (evPush), whether the initiator was infective
	// (the contact carries the rumor); on a reply (evAck), whether the
	// partner needed the initiator's rumor.
	needed bool
	// carries: on a reply, whether the partner's knowledge rides back
	// (push-pull).
	carries bool
	seq     uint64 // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// sim carries the run state.
type sim struct {
	cfg        Config
	sel        spatial.Selector
	rng        *rand.Rand
	n          int
	state      []core.State
	counter    []int
	infAt      []float64 // infection time, -1 if never
	queue      eventQueue
	seq        uint64
	sent       int
	infectives int
}

func (s *sim) schedule(e event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.queue, e)
}

// nextWake returns the next jittered period for a site.
func (s *sim) nextWake(now float64) float64 {
	j := s.cfg.Jitter
	period := s.cfg.MeanPeriod
	if j > 0 {
		period *= 1 - j + 2*j*s.rng.Float64()
	}
	return now + period
}

// SpreadRumorAsync runs rumor mongering asynchronously from origin and
// returns the §1.4 metrics with delays in mean periods.
func SpreadRumorAsync(cfg Config, sel spatial.Selector, origin int, rng *rand.Rand) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := sel.NumSites()
	if origin < 0 || origin >= n {
		return Result{}, fmt.Errorf("async: origin %d out of range [0,%d)", origin, n)
	}
	maxT := cfg.MaxTime
	if maxT <= 0 {
		maxT = 1000
	}
	maxT *= cfg.MeanPeriod

	s := &sim{
		cfg:     cfg,
		sel:     sel,
		rng:     rng,
		n:       n,
		state:   make([]core.State, n),
		counter: make([]int, n),
		infAt:   make([]float64, n),
	}
	for i := range s.infAt {
		s.infAt[i] = -1
	}
	s.state[origin] = core.Infective
	s.infAt[origin] = 0
	// Every site has a wake schedule (susceptible wakes matter for
	// push-pull); stagger the first wakes uniformly over one period.
	for i := 0; i < n; i++ {
		s.schedule(event{at: s.rng.Float64() * cfg.MeanPeriod, kind: evWake, site: int32(i)})
	}

	latency := cfg.Latency * cfg.MeanPeriod
	pushPull := cfg.Rumor.Mode == core.PushPull
	s.infectives = 1
	for s.queue.Len() > 0 && s.infectives > 0 {
		e := heap.Pop(&s.queue).(event)
		if e.at > maxT {
			break
		}
		switch e.kind {
		case evWake:
			site := int(e.site)
			s.schedule(event{at: s.nextWake(e.at), kind: evWake, site: e.site})
			hot := s.state[site] == core.Infective
			if !hot && !pushPull {
				continue // pure push: only infectives phone anyone
			}
			to := s.sel.Pick(s.rng, site)
			if hot {
				s.sent++
			}
			// The contact carries the rumor iff the initiator is hot;
			// under push-pull a susceptible initiator still phones, to
			// pull whatever the partner has.
			s.schedule(event{at: e.at + latency, kind: evPush, site: int32(to), from: e.site, needed: hot})
		case evPush:
			// A contact arrives at the partner. e.needed carries "the
			// initiator was infective when it phoned".
			site := int(e.site)
			partnerKnew := s.state[site] != core.Susceptible
			if e.needed && !partnerKnew {
				s.infect(site, e.at)
			}
			// The partner applies rumor feedback for its own hot rumor
			// immediately (it learns the initiator's knowledge from the
			// contact) and, under push-pull, ships its rumor back.
			if pushPull && s.state[site] == core.Infective && s.infAt[site] < e.at {
				initiatorKnew := e.needed // hot initiators know the update
				s.sent++
				s.feedback(site, !initiatorKnew)
			}
			// Reply to the initiator: feedback for its push, plus the
			// partner's rumor under push-pull.
			replyCarries := pushPull && s.state[site] != core.Susceptible
			s.schedule(event{
				at: e.at + latency, kind: evAck, site: e.from, from: e.site,
				needed: !partnerKnew, carries: replyCarries,
			})
		case evAck:
			site := int(e.site)
			if e.carries && s.state[site] == core.Susceptible {
				s.infect(site, e.at)
			}
			if s.state[site] == core.Infective && s.infAt[site] < e.at {
				// Apply feedback only if this site actually pushed (it
				// was hot when it phoned; needed is meaningful then).
				s.feedback(site, e.needed)
			}
		}
	}
	return s.result(), nil
}

// infect marks a susceptible site infective at time t.
func (s *sim) infect(site int, t float64) {
	s.state[site] = core.Infective
	s.infAt[site] = t
	s.infectives++
}

// feedback applies one share outcome to an infective site's loss state.
func (s *sim) feedback(site int, needed bool) {
	unnecessary := !needed || !s.cfg.Rumor.Feedback
	if !unnecessary {
		if s.cfg.Rumor.Counter && !s.cfg.Rumor.NoCounterReset {
			s.counter[site] = 0
		}
		return
	}
	if s.cfg.Rumor.Counter {
		s.counter[site]++
		if s.counter[site] >= s.cfg.Rumor.K {
			s.state[site] = core.Removed
			s.infectives--
		}
		return
	}
	if s.rng.Float64() < 1/float64(s.cfg.Rumor.K) {
		s.state[site] = core.Removed
		s.infectives--
	}
}

func (s *sim) result() Result {
	res := Result{N: s.n, UpdatesSent: s.sent, Traffic: float64(s.sent) / float64(s.n)}
	var knowers, susceptible int
	var sum, last float64
	for i := range s.state {
		if s.infAt[i] >= 0 {
			knowers++
			sum += s.infAt[i]
			if s.infAt[i] > last {
				last = s.infAt[i]
			}
		} else {
			susceptible++
		}
	}
	res.Residue = float64(susceptible) / float64(s.n)
	if knowers > 0 {
		res.TAve = sum / float64(knowers) / s.cfg.MeanPeriod
	}
	res.TLast = last / s.cfg.MeanPeriod
	res.Converged = susceptible == 0
	return res
}

// AntiEntropyConfig parameterises an asynchronous anti-entropy run.
type AntiEntropyConfig struct {
	// Mode is push, pull, or push-pull.
	Mode core.Mode
	// MeanPeriod, Jitter, Latency as in Config.
	MeanPeriod, Jitter, Latency float64
	// MaxTime bounds the run in mean periods; 0 means 10000.
	MaxTime float64
}

// SpreadAntiEntropyAsync runs a simple epidemic asynchronously: every site
// wakes on its own schedule and resolves the single update with a random
// partner; the transfer lands after one round trip.
func SpreadAntiEntropyAsync(cfg AntiEntropyConfig, sel spatial.Selector, origin int, rng *rand.Rand) (Result, error) {
	if !cfg.Mode.Valid() {
		return Result{}, fmt.Errorf("async: invalid mode %v", cfg.Mode)
	}
	if cfg.MeanPeriod <= 0 || cfg.Jitter < 0 || cfg.Jitter >= 1 || cfg.Latency < 0 {
		return Result{}, fmt.Errorf("async: bad timing parameters")
	}
	n := sel.NumSites()
	if origin < 0 || origin >= n {
		return Result{}, fmt.Errorf("async: origin %d out of range [0,%d)", origin, n)
	}
	maxT := cfg.MaxTime
	if maxT <= 0 {
		maxT = 10_000
	}
	maxT *= cfg.MeanPeriod

	s := &sim{
		cfg:   Config{MeanPeriod: cfg.MeanPeriod, Jitter: cfg.Jitter, Latency: cfg.Latency},
		sel:   sel,
		rng:   rng,
		n:     n,
		state: make([]core.State, n),
		infAt: make([]float64, n),
	}
	for i := range s.infAt {
		s.infAt[i] = -1
	}
	s.state[origin] = core.Infective
	s.infAt[origin] = 0
	for i := 0; i < n; i++ {
		s.schedule(event{at: s.rng.Float64() * cfg.MeanPeriod, kind: evWake, site: int32(i)})
	}

	latency := cfg.Latency * cfg.MeanPeriod
	infected := 1
	for s.queue.Len() > 0 && infected < n {
		e := heap.Pop(&s.queue).(event)
		if e.at > maxT {
			break
		}
		switch e.kind {
		case evWake:
			j := int(e.site)
			s.schedule(event{at: s.nextWake(e.at), kind: evWake, site: e.site})
			i := s.sel.Pick(s.rng, j)
			jHas := s.state[j].Knows()
			iHas := s.state[i].Knows()
			// The update travels one round trip: the initiator's state is
			// observed now, the transfer lands at +2·latency.
			switch cfg.Mode {
			case core.Push:
				if jHas && !iHas {
					s.sent++
					s.schedule(event{at: e.at + latency, kind: evPush, site: int32(i)})
				}
			case core.Pull:
				if iHas && !jHas {
					s.sent++
					s.schedule(event{at: e.at + 2*latency, kind: evPush, site: e.site})
				}
			case core.PushPull:
				switch {
				case jHas && !iHas:
					s.sent++
					s.schedule(event{at: e.at + latency, kind: evPush, site: int32(i)})
				case iHas && !jHas:
					s.sent++
					s.schedule(event{at: e.at + 2*latency, kind: evPush, site: e.site})
				}
			}
		case evPush:
			site := int(e.site)
			if !s.state[site].Knows() {
				s.state[site] = core.Infective
				s.infAt[site] = e.at
				infected++
			}
		}
	}
	return s.result(), nil
}
