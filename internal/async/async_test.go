package async

import (
	"math"
	"math/rand"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/spatial"
)

func baseConfig(k int) Config {
	return Config{
		Rumor:      core.RumorConfig{K: k, Counter: true, Feedback: true, Mode: core.Push},
		MeanPeriod: 1,
		Jitter:     0.3,
		Latency:    0.1,
	}
}

func avgAsync(t *testing.T, cfg Config, n, trials int, seed int64) (residue, traffic, tlast float64) {
	t.Helper()
	sel := spatial.Uniform(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		r, err := SpreadRumorAsync(cfg, sel, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		residue += r.Residue
		traffic += r.Traffic
		tlast += r.TLast
	}
	f := float64(trials)
	return residue / f, traffic / f, tlast / f
}

func TestConfigValidation(t *testing.T) {
	sel := spatial.Uniform(10)
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{Rumor: core.RumorConfig{K: 0, Mode: core.Push}, MeanPeriod: 1},
		{Rumor: core.RumorConfig{K: 1, Mode: core.Pull}, MeanPeriod: 1},
		{Rumor: core.RumorConfig{K: 1, Mode: core.Push}},
		{Rumor: core.RumorConfig{K: 1, Mode: core.Push}, MeanPeriod: 1, Jitter: 1},
		{Rumor: core.RumorConfig{K: 1, Mode: core.Push}, MeanPeriod: 1, Latency: -1},
	}
	for i, cfg := range bad {
		if _, err := SpreadRumorAsync(cfg, sel, 0, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := SpreadRumorAsync(baseConfig(1), sel, 99, rng); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := SpreadAntiEntropyAsync(AntiEntropyConfig{}, sel, 0, rng); err == nil {
		t.Error("zero AE config accepted")
	}
	if _, err := SpreadAntiEntropyAsync(AntiEntropyConfig{Mode: core.Push}, sel, 0, rng); err == nil {
		t.Error("AE config without period accepted")
	}
	if _, err := SpreadAntiEntropyAsync(AntiEntropyConfig{Mode: core.Push, MeanPeriod: 1}, sel, -1, rng); err == nil {
		t.Error("AE bad origin accepted")
	}
}

// The headline robustness check: asynchronous rumor mongering lands near
// the synchronous Table 1 numbers (residue/traffic within a small factor,
// t_last within ~30%).
func TestAsyncMatchesSynchronousTable1(t *testing.T) {
	for _, k := range []int{2, 4} {
		sAsync, mAsync, tAsync := avgAsync(t, baseConfig(k), 1000, 10, int64(k))

		// Synchronous reference.
		sel := spatial.Uniform(1000)
		rng := rand.New(rand.NewSource(int64(k) + 100))
		var sSync, mSync, tSync float64
		const trials = 10
		for i := 0; i < trials; i++ {
			r, err := core.SpreadRumor(core.RumorConfig{K: k, Counter: true, Feedback: true, Mode: core.Push},
				sel, rng.Intn(1000), rng)
			if err != nil {
				t.Fatal(err)
			}
			sSync += r.Residue
			mSync += r.Traffic
			tSync += float64(r.TLast)
		}
		sSync /= trials
		mSync /= trials
		tSync /= trials

		if math.Abs(mAsync-mSync) > 0.2*mSync+0.3 {
			t.Errorf("k=%d: async traffic %.2f vs sync %.2f", k, mAsync, mSync)
		}
		if sSync > 0 && (sAsync > sSync*3 || sAsync < sSync/3) {
			t.Errorf("k=%d: async residue %.4f vs sync %.4f", k, sAsync, sSync)
		}
		if math.Abs(tAsync-tSync) > 0.4*tSync {
			t.Errorf("k=%d: async t_last %.1f vs sync %.1f", k, tAsync, tSync)
		}
	}
}

func TestAsyncJitterAndLatencyDegradeGracefully(t *testing.T) {
	cfg := baseConfig(3)
	sTight, _, tTight := avgAsync(t, cfg, 500, 10, 1)
	rough := cfg
	rough.Jitter = 0.9
	rough.Latency = 0.5
	sRough, _, tRough := avgAsync(t, rough, 500, 10, 2)
	// Heavier asynchrony should not break the epidemic — residues stay
	// comparable and delay grows bounded (latency adds per hop).
	if sRough > sTight*5+0.02 {
		t.Errorf("rough asynchrony residue %.4f vs tight %.4f", sRough, sTight)
	}
	if tRough > tTight*3 {
		t.Errorf("rough asynchrony t_last %.1f vs tight %.1f", tRough, tTight)
	}
}

func TestAsyncAntiEntropyConverges(t *testing.T) {
	sel := spatial.Uniform(512)
	rng := rand.New(rand.NewSource(3))
	for _, mode := range []core.Mode{core.Push, core.Pull, core.PushPull} {
		cfg := AntiEntropyConfig{Mode: mode, MeanPeriod: 1, Jitter: 0.2, Latency: 0.05}
		r, err := SpreadAntiEntropyAsync(cfg, sel, rng.Intn(512), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged {
			t.Errorf("%v: did not converge (residue %.4f)", mode, r.Residue)
		}
		// Expect O(log n) periods; generous bound.
		if r.TLast > 60 {
			t.Errorf("%v: t_last %.1f too slow", mode, r.TLast)
		}
	}
}

// Asynchronous push-pull anti-entropy should converge in roughly the
// synchronous number of "cycles" (mean periods).
func TestAsyncAntiEntropyMatchesSynchronous(t *testing.T) {
	const n = 512
	sel := spatial.Uniform(n)
	rng := rand.New(rand.NewSource(5))
	var tAsync float64
	const trials = 8
	for i := 0; i < trials; i++ {
		r, err := SpreadAntiEntropyAsync(AntiEntropyConfig{
			Mode: core.PushPull, MeanPeriod: 1, Jitter: 0.3, Latency: 0.05,
		}, sel, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		tAsync += r.TLast
	}
	tAsync /= trials

	var tSync float64
	for i := 0; i < trials; i++ {
		r, err := core.SpreadAntiEntropy(core.AntiEntropyConfig{Mode: core.PushPull}, sel, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		tSync += float64(r.TLast)
	}
	tSync /= trials
	if math.Abs(tAsync-tSync) > 0.5*tSync {
		t.Errorf("async t_last %.1f vs sync %.1f", tAsync, tSync)
	}
}

func TestAsyncDeterministicWithSeed(t *testing.T) {
	sel := spatial.Uniform(200)
	r1, err := SpreadRumorAsync(baseConfig(2), sel, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SpreadRumorAsync(baseConfig(2), sel, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed, different results: %+v vs %+v", r1, r2)
	}
}

func TestAsyncBlindCoin(t *testing.T) {
	cfg := Config{
		Rumor:      core.RumorConfig{K: 1, Mode: core.Push}, // blind coin k=1
		MeanPeriod: 1,
	}
	s, m, _ := avgAsync(t, cfg, 1000, 10, 7)
	// Matches Table 2 k=1: dies almost immediately.
	if s < 0.85 {
		t.Errorf("blind coin k=1 residue %.3f, want ~0.96", s)
	}
	if m > 0.15 {
		t.Errorf("blind coin k=1 traffic %.3f, want ~0.04", m)
	}
}

// Push-pull asynchronous rumors: the pull direction works — a susceptible
// site that phones an infective partner receives the update in the reply.
func TestAsyncPushPull(t *testing.T) {
	cfg := Config{
		Rumor:      core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.PushPull},
		MeanPeriod: 1,
		Jitter:     0.3,
		Latency:    0.1,
	}
	s, m, _ := avgAsync(t, cfg, 1000, 10, 17)
	// Push-pull at k=2 should beat pure push at k=2 on residue
	// (synchronous reference: push-pull 0.033 vs push 0.036; the pull
	// path adds coverage).
	sPush, _, _ := avgAsync(t, baseConfig(2), 1000, 10, 18)
	if s > sPush*2 {
		t.Errorf("async push-pull residue %.4f much worse than push %.4f", s, sPush)
	}
	if m <= 0 {
		t.Error("no traffic recorded")
	}
	// Two-site sanity: with one infective and one susceptible, push-pull
	// must always converge (either direction delivers).
	sel := spatial.Uniform(2)
	for seed := int64(0); seed < 20; seed++ {
		r, err := SpreadRumorAsync(cfg, sel, 0, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged {
			t.Fatalf("seed %d: two-site push-pull failed to converge", seed)
		}
	}
}
