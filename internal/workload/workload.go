// Package workload generates continuous update streams against a
// simulated cluster — the operating regime the paper designs for: "Each
// database update is injected at a single site and must be propagated to
// all the other sites" at some steady rate, with the system never fully
// quiescent. It is used by the τ-window experiment (§1.3's checksum +
// recent-update-list tradeoff) and available to applications for load
// testing.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"epidemic/internal/sim"
	"epidemic/internal/store"
)

// Config parameterises a generator.
type Config struct {
	// KeySpace is the number of distinct keys; updates pick keys Zipf- or
	// uniformly-distributed over it.
	KeySpace int
	// UpdatesPerCycle is the expected number of updates injected per
	// cycle (Poisson).
	UpdatesPerCycle float64
	// DeleteFraction is the probability an operation is a delete.
	DeleteFraction float64
	// Zipf skews key popularity (s > 1); 0 selects uniform keys.
	Zipf float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.KeySpace < 1 {
		return fmt.Errorf("workload: KeySpace must be >= 1, got %d", c.KeySpace)
	}
	if c.UpdatesPerCycle < 0 {
		return fmt.Errorf("workload: UpdatesPerCycle must be >= 0")
	}
	if c.DeleteFraction < 0 || c.DeleteFraction > 1 {
		return fmt.Errorf("workload: DeleteFraction must be in [0,1]")
	}
	if c.Zipf != 0 && c.Zipf <= 1 {
		return fmt.Errorf("workload: Zipf must be > 1 (or 0 for uniform)")
	}
	return nil
}

// Generator injects a reproducible update stream into a cluster.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int

	// Injected counts operations so far, by kind.
	updates, deletes int
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng}
	if cfg.Zipf != 0 {
		g.zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(cfg.KeySpace-1))
	}
	return g, nil
}

// Counts returns the number of updates and deletes injected so far.
func (g *Generator) Counts() (updates, deletes int) { return g.updates, g.deletes }

// key picks the next key.
func (g *Generator) key() string {
	var i uint64
	if g.zipf != nil {
		i = g.zipf.Uint64()
	} else {
		i = uint64(g.rng.Intn(g.cfg.KeySpace))
	}
	return fmt.Sprintf("key/%06d", i)
}

// poisson draws a Poisson variate with mean lambda (Knuth's method; fine
// for the small per-cycle means used here).
func (g *Generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	product := 1.0
	for i := 0; ; i++ {
		product *= g.rng.Float64()
		if product < limit {
			return i
		}
	}
}

// Step injects one cycle's worth of operations at random sites of the
// cluster and returns the entries written.
func (g *Generator) Step(c *sim.Cluster) []store.Entry {
	n := g.poisson(g.cfg.UpdatesPerCycle)
	var out []store.Entry
	for i := 0; i < n; i++ {
		site := g.rng.Intn(c.N())
		key := g.key()
		if g.rng.Float64() < g.cfg.DeleteFraction {
			out = append(out, c.Node(site).Delete(key))
			g.deletes++
			continue
		}
		g.seq++
		val := store.Value(fmt.Sprintf("v%d", g.seq))
		out = append(out, c.Node(site).Update(key, val))
		g.updates++
	}
	return out
}
