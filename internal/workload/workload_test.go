package workload

import (
	"math"
	"strings"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/sim"
)

func testCluster(t *testing.T) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{
		N:     6,
		Rumor: core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.PushPull},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "ok", cfg: Config{KeySpace: 10, UpdatesPerCycle: 1}},
		{name: "no keyspace", cfg: Config{}, wantErr: true},
		{name: "negative rate", cfg: Config{KeySpace: 1, UpdatesPerCycle: -1}, wantErr: true},
		{name: "bad delete frac", cfg: Config{KeySpace: 1, DeleteFraction: 1.5}, wantErr: true},
		{name: "bad zipf", cfg: Config{KeySpace: 1, Zipf: 0.5}, wantErr: true},
		{name: "zipf ok", cfg: Config{KeySpace: 10, Zipf: 1.2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGenerator(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestStepInjectsAtConfiguredRate(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 50, UpdatesPerCycle: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	total := 0
	const cycles = 400
	for i := 0; i < cycles; i++ {
		total += len(g.Step(c))
	}
	mean := float64(total) / cycles
	if math.Abs(mean-3) > 0.4 {
		t.Errorf("mean injections per cycle = %.2f, want ~3", mean)
	}
	ups, dels := g.Counts()
	if ups != total || dels != 0 {
		t.Errorf("counts = %d/%d, want %d/0", ups, dels, total)
	}
}

func TestStepDeletes(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 10, UpdatesPerCycle: 4, DeleteFraction: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	entries := g.Step(c)
	for _, e := range entries {
		if !e.IsDeath() {
			t.Fatal("DeleteFraction=1 produced a live update")
		}
	}
	_, dels := g.Counts()
	if dels != len(entries) {
		t.Errorf("deletes = %d, want %d", dels, len(entries))
	}
}

func TestKeysWithinKeySpace(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 5, UpdatesPerCycle: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		for _, e := range g.Step(c) {
			if !strings.HasPrefix(e.Key, "key/") {
				t.Fatalf("bad key %q", e.Key)
			}
			seen[e.Key] = true
		}
	}
	if len(seen) > 5 {
		t.Errorf("saw %d distinct keys, keyspace is 5", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 100, UpdatesPerCycle: 10, Zipf: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	counts := make(map[string]int)
	for i := 0; i < 200; i++ {
		for _, e := range g.Step(c) {
			counts[e.Key]++
		}
	}
	// The hottest key should dominate under s=2.
	var maxCount, total int
	for _, n := range counts {
		total += n
		if n > maxCount {
			maxCount = n
		}
	}
	if float64(maxCount)/float64(total) < 0.3 {
		t.Errorf("zipf skew too weak: top key %d/%d", maxCount, total)
	}
}

func TestZeroRate(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	if got := g.Step(c); len(got) != 0 {
		t.Errorf("zero rate injected %d", len(got))
	}
}

// Under continuous load plus gossip, the cluster stays *mostly* current —
// the paper's relaxed consistency — and becomes fully consistent once the
// load stops.
func TestContinuousLoadEventuallyConsistent(t *testing.T) {
	g, err := NewGenerator(Config{KeySpace: 20, UpdatesPerCycle: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	for i := 0; i < 50; i++ {
		g.Step(c)
		c.StepRumor()
		c.StepAntiEntropy()
	}
	// Quiesce.
	if _, ok := c.RunAntiEntropyToConsistency(60); !ok {
		t.Fatal("did not converge after load stopped")
	}
}
