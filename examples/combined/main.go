// Combined: §1.5's peel-back + rumor-mongering scheme. Every update lives
// in a doubly-linked list in local activity order; each round a node sends
// a batch from the head of its list and checksum agreement decides when to
// stop. Useful updates move to the front, useless ones slip deeper —
// unlike pure rumor mongering, the exchange has no failure probability,
// because in the worst case it peels back through the whole database.
package main

import (
	"fmt"
	"log"

	"epidemic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := epidemic.NewSimulatedClock(1)
	mk := func(site epidemic.SiteID) *epidemic.Node {
		n, err := epidemic.NewNode(epidemic.NodeConfig{
			Site:  site,
			Clock: clock.ClockAt(site),
			Seed:  int64(site) + 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	a, b, c := mk(1), mk(2), mk(3)
	a.SetPeers([]epidemic.Peer{epidemic.NewLocalPeer(b, 1), epidemic.NewLocalPeer(c, 2)})
	b.SetPeers([]epidemic.Peer{epidemic.NewLocalPeer(a, 3), epidemic.NewLocalPeer(c, 4)})
	c.SetPeers([]epidemic.Peer{epidemic.NewLocalPeer(a, 5), epidemic.NewLocalPeer(b, 6)})

	// A long cold history at a, then one fresh update.
	for i := 0; i < 30; i++ {
		a.Update(fmt.Sprintf("history/%02d", i), epidemic.Value("archived"))
		clock.Advance(1)
	}
	a.Update("news/today", epidemic.Value("fresh!"))
	fmt.Printf("a's activity list head: %v\n", a.ActivityOrder()[:3])

	// Combined exchanges, batch size 4: the first batch carries the fresh
	// update; checksum disagreement pulls the history after it.
	nodes := []*epidemic.Node{a, b, c}
	totalSent := 0
	for round := 1; ; round++ {
		for _, n := range nodes {
			sent, err := n.StepActivityExchange(4)
			if err != nil {
				return err
			}
			totalSent += sent
		}
		if allEqual(nodes) {
			fmt.Printf("all replicas identical after %d rounds, %d entries shipped\n", round, totalSent)
			break
		}
		if round > 100 {
			return fmt.Errorf("did not converge")
		}
	}

	// A second fresh update now costs almost nothing: one batch, then
	// checksum agreement stops the exchange immediately.
	b.Update("news/tomorrow", epidemic.Value("fresher!"))
	sent, err := b.StepActivityExchange(4)
	if err != nil {
		return err
	}
	fmt.Printf("incremental update shipped with a single %d-entry batch\n", sent)
	return nil
}

func allEqual(nodes []*epidemic.Node) bool {
	for _, n := range nodes[1:] {
		if n.Store().Checksum() != nodes[0].Store().Checksum() {
			return false
		}
	}
	return true
}
