// Clearinghouse: a miniature version of the Xerox Clearinghouse name
// service that motivated the paper — three-level hierarchical names
// (object:domain:organization) mapping to machine addresses, replicated at
// every server, kept consistent by direct mail + rumor mongering +
// anti-entropy, with deletions handled by death certificates.
//
// The scenario walks through the paper's §0.1 motivation: a highly
// replicated domain, lossy mail, and the epidemic machinery quietly
// repairing everything.
package main

import (
	"fmt"
	"log"
	"strings"

	"epidemic"
)

// nameKey builds the three-level Clearinghouse name used as database key.
func nameKey(object, domain, org string) string {
	return strings.Join([]string{object, domain, org}, ":")
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 20 Clearinghouse servers all replicate the "PARC:Xerox" domain.
	// Direct mail is the primary distribution, but half of it is lost —
	// the paper's "PostMail is nearly, but not completely, reliable".
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:                  20,
		Rumor:              epidemic.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		DirectMailOnUpdate: true,
		MailLoss:           0.5,
		Redistribution:     epidemic.RedistributeRumor,
		Tau1:               5_000,
		Tau2:               50_000,
		RetentionCount:     3,
		Seed:               42,
	})
	if err != nil {
		return err
	}

	// Register some PARC machines, each at whichever server the client
	// happened to contact.
	entries := []struct {
		site    int
		object  string
		address string
	}{
		{0, "Dorado-1", "net=10 host=2"},
		{3, "Dandelion-7", "net=10 host=9"},
		{7, "FileServer-A", "net=11 host=1"},
		{12, "PrintServer-B", "net=12 host=4"},
	}
	for _, e := range entries {
		key := nameKey(e.object, "PARC", "Xerox")
		cluster.Node(e.site).Update(key, epidemic.Value(e.address))
	}

	lookupKey := nameKey("Dorado-1", "PARC", "Xerox")
	fmt.Printf("after lossy direct mail: %d/%d servers can resolve %s\n",
		cluster.CountWithValue(lookupKey, "net=10 host=2"), cluster.N(), lookupKey)

	// Rumor mongering plus anti-entropy finish the distribution.
	cluster.RunRumorToQuiescence(200)
	cluster.RunAntiEntropyToConsistency(200)
	fmt.Printf("after gossip: %d/%d servers can resolve %s\n",
		cluster.CountWithValue(lookupKey, "net=10 host=2"), cluster.N(), lookupKey)

	// A machine moves: the binding is updated at a different server, and
	// the newer timestamp supersedes the old address everywhere.
	cluster.Node(19).Update(lookupKey, epidemic.Value("net=14 host=77"))
	cluster.RunRumorToQuiescence(200)
	cluster.RunAntiEntropyToConsistency(200)
	fmt.Printf("after move: %d/%d servers resolve the new address\n",
		cluster.CountWithValue(lookupKey, "net=14 host=77"), cluster.N())

	// The machine is decommissioned. A death certificate spreads; the
	// name disappears at every server and stays gone.
	cluster.Node(2).Delete(lookupKey)
	cluster.RunRumorToQuiescence(200)
	cluster.RunAntiEntropyToConsistency(200)
	fmt.Printf("after decommission: %d/%d servers agree %s is gone\n",
		cluster.CountDeleted(lookupKey), cluster.N(), lookupKey)

	// Show the surviving directory from an arbitrary server.
	fmt.Println("directory at server 9:")
	for _, key := range cluster.Node(9).Store().Keys() {
		if v, ok := cluster.Node(9).Lookup(key); ok {
			fmt.Printf("  %-28s -> %s\n", key, v)
		}
	}
	stats := cluster.TotalStats()
	fmt.Printf("traffic: mail=%d (failed=%d) exchanges=%d entries-sent=%d\n",
		stats.MailSent, stats.MailFailed, stats.AntiEntropyRuns, stats.EntriesSent)

	return domainsAct()
}

// domainsAct shows partial replication: like the real Clearinghouse, each
// domain lives on its own subset of servers, and domains gossip
// independently — a lightly replicated domain imposes no load elsewhere.
func domainsAct() error {
	fmt.Println("\n--- partially replicated domains ---")
	assignment := epidemic.DomainAssignment{
		"AllHosts:Xerox": {1, 2, 3, 4}, // stored everywhere
		"PARC:Xerox":     {1, 2},       // west-coast servers only
		"Webster:Xerox":  {3, 4},       // east-coast servers only
	}
	clock := epidemic.NewSimulatedClock(1)
	hosts := make(map[epidemic.SiteID]*epidemic.DomainHost, 4)
	for _, site := range []epidemic.SiteID{1, 2, 3, 4} {
		h, err := epidemic.NewDomainHost(epidemic.DomainHostConfig{
			Site: site, Clock: clock.ClockAt(site), Seed: int64(site),
		}, assignment)
		if err != nil {
			return err
		}
		hosts[site] = h
	}
	if err := epidemic.WireDomainHosts(hosts, assignment, 7); err != nil {
		return err
	}

	if _, err := hosts[1].Update("PARC:Xerox", "Dorado-1", epidemic.Value("net=10 host=2")); err != nil {
		return err
	}
	if _, err := hosts[4].Update("Webster:Xerox", "Copier-9", epidemic.Value("net=30 host=5")); err != nil {
		return err
	}
	for round := 0; round < 6; round++ {
		for _, h := range hosts {
			if err := h.StepAntiEntropy(); err != nil {
				return err
			}
		}
	}
	if v, ok, _ := hosts[2].Lookup("PARC:Xerox", "Dorado-1"); ok {
		fmt.Printf("server 2 resolves Dorado-1:PARC:Xerox -> %s\n", v)
	}
	if _, _, err := hosts[1].Lookup("Webster:Xerox", "Copier-9"); err != nil {
		fmt.Printf("server 1 does not store Webster:Xerox (%v)\n", err)
	}
	fmt.Printf("server 3 stores domains %v\n", hosts[3].Domains())
	return nil
}
