// Quickstart: build an in-memory cluster of replicas, write at one site,
// gossip until every replica agrees, then delete and watch the death
// certificate spread.
package main

import (
	"fmt"
	"log"

	"epidemic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Eight replicas, rumor mongering in the paper's recommended
	// configuration (push-pull, feedback, counter k=3), with anti-entropy
	// available as the backup.
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:              8,
		Rumor:          epidemic.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Redistribution: epidemic.RedistributeRumor,
		Tau1:           1_000,
		Tau2:           10_000,
		RetentionCount: 2,
		Seed:           1,
	})
	if err != nil {
		return err
	}

	// A client writes at site 0; the update becomes a hot rumor there.
	cluster.Node(0).Update("printer/alto-1", epidemic.Value("net=12 host=31"))
	fmt.Println("update injected at site 0")

	// Rumor mongering spreads it epidemically.
	cycles := cluster.RunRumorToQuiescence(100)
	fmt.Printf("rumor quiescent after %d cycles; %d/%d replicas infected\n",
		cycles, cluster.CountWithValue("printer/alto-1", "net=12 host=31"), cluster.N())

	// Anti-entropy guarantees the stragglers (if any) catch up.
	aeCycles, ok := cluster.RunAntiEntropyToConsistency(100)
	fmt.Printf("anti-entropy consistent=%v after %d cycles\n", ok, aeCycles)

	v, found := cluster.Node(7).Lookup("printer/alto-1")
	fmt.Printf("site 7 reads: %q (found=%v)\n", v, found)

	// Deleting writes a death certificate, which spreads like any update
	// and cancels stale copies along the way.
	cluster.Node(5).Delete("printer/alto-1")
	cluster.RunAntiEntropyToConsistency(100)
	fmt.Printf("after delete: %d/%d replicas agree the item is gone\n",
		cluster.CountDeleted("printer/alto-1"), cluster.N())
	return nil
}
