// CIN simulation: reproduce the paper's headline operational result — on
// the Xerox Corporate Internet topology, choosing anti-entropy partners
// with the spatial distribution of equation (3.1.1) instead of uniformly
// cuts average link traffic several-fold and traffic on the critical
// transatlantic link by an order of magnitude, while convergence slows by
// less than 2x (Table 4).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"epidemic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cin, err := epidemic.NewCIN()
	if err != nil {
		return err
	}
	fmt.Printf("synthetic CIN: %d sites (%d North America, %d Europe), %d links\n",
		cin.NumSites(), len(cin.NASites), len(cin.EUSites), cin.Graph().NumLinks())

	uniform, err := epidemic.NewUniformSelector(cin.NumSites())
	if err != nil {
		return err
	}
	spatial, err := epidemic.NewSpatialSelector(cin.Network, epidemic.FormPaper, 2.0)
	if err != nil {
		return err
	}

	const trials = 50
	for _, tc := range []struct {
		name string
		sel  epidemic.Selector
	}{
		{"uniform selection   ", uniform},
		{"eq (3.1.1), a = 2.0 ", spatial},
	} {
		rng := rand.New(rand.NewSource(7))
		var tLast, cmpAvg, cmpBushey float64
		for t := 0; t < trials; t++ {
			r, err := epidemic.SpreadAntiEntropy(
				epidemic.AntiEntropyConfig{Mode: epidemic.PushPull},
				tc.sel, rng.Intn(cin.NumSites()), rng,
				epidemic.WithLinkAccounting(cin.Network))
			if err != nil {
				return err
			}
			cycles := float64(r.Cycles)
			tLast += float64(r.TLast)
			cmpAvg += r.CompareLoad.Average() / cycles
			cmpBushey += r.CompareLoad.GetNamed(epidemic.BusheyLinkName) / cycles
		}
		fmt.Printf("%s t_last=%5.1f cycles   avg traffic/link=%5.1f   Bushey link=%6.1f conversations/cycle\n",
			tc.name, tLast/trials, cmpAvg/trials, cmpBushey/trials)
	}
	fmt.Println("\nthe spatial distribution unloads the transatlantic link by >30x while convergence slows only ~2x")
	return nil
}
