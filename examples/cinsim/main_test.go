package main

import "testing"

// The example is a runnable demo; the test pins that it keeps working.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
