// Loadtest: drive a cluster with a continuous Zipf-skewed update stream
// and watch the paper's §0 "relaxed consistency" in action — replicas are
// never all identical while updates keep arriving, yet almost every entry
// at every site is current; stopping the load lets gossip close the gap
// completely.
package main

import (
	"fmt"
	"log"

	"epidemic"
	"epidemic/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:     10,
		Rumor: epidemic.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Seed:  5,
	})
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(workload.Config{
		KeySpace:        80,
		UpdatesPerCycle: 6,
		DeleteFraction:  0.1,
		Zipf:            1.5,
		Seed:            7,
	})
	if err != nil {
		return err
	}

	consistentCycles := 0
	const cycles = 120
	for i := 0; i < cycles; i++ {
		gen.Step(cluster)
		cluster.StepRumor()
		cluster.StepAntiEntropy()
		if cluster.Consistent() {
			consistentCycles++
		}
	}
	ups, dels := gen.Counts()
	fmt.Printf("injected %d updates and %d deletes over %d cycles\n", ups, dels, cycles)
	fmt.Printf("cluster fully consistent during %d/%d loaded cycles\n", consistentCycles, cycles)

	// Quiesce: the paper's guarantee kicks in once updating stops.
	quiesceCycles, ok := cluster.RunAntiEntropyToConsistency(100)
	fmt.Printf("after load stopped: consistent=%v in %d cycles\n", ok, quiesceCycles)

	stats := cluster.TotalStats()
	fmt.Printf("protocol work: %d anti-entropy runs, %d rumor rounds, %d entries shipped\n",
		stats.AntiEntropyRuns, stats.RumorRuns, stats.EntriesSent)
	return nil
}
