// Partition: demonstrate the failure-repair properties the paper designs
// for — a replica cut off from the network misses updates (including a
// delete), keeps serving stale data, and is healed by anti-entropy when
// the partition mends; a dormant death certificate awakens to cancel the
// very stale copy it brings back.
package main

import (
	"fmt"
	"log"

	"epidemic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const tau1 = 50 // short active window so dormancy kicks in quickly
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:     10,
		Rumor: epidemic.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Resolve: epidemic.ResolveConfig{
			Mode:              epidemic.PushPull,
			Strategy:          epidemic.CompareFull,
			Tau1:              tau1,
			ReactivateDormant: true,
		},
		Redistribution: epidemic.RedistributeRumor,
		Tau1:           tau1,
		Tau2:           1_000_000,
		RetentionCount: 3,
		Seed:           11,
	})
	if err != nil {
		return err
	}

	// Everyone learns the item.
	cluster.Node(0).Update("service/mail", epidemic.Value("host-A"))
	cluster.RunAntiEntropyToConsistency(100)
	fmt.Printf("item replicated at %d/%d sites\n",
		cluster.CountWithValue("service/mail", "host-A"), cluster.N())

	// Site 6 drops off the network; the item is deleted meanwhile.
	cluster.SetPartition(6, true)
	cluster.Node(1).Delete("service/mail")
	cluster.RunAntiEntropyToConsistency(100)
	fmt.Printf("during partition: %d/%d reachable sites saw the delete; site 6 still serves %v\n",
		cluster.CountDeleted("service/mail"), cluster.N()-1, lookup(cluster, 6))

	// Long outage: far beyond tau1, so most sites discard the death
	// certificate and only retention sites keep dormant copies.
	cluster.Clock().Advance(1_000)
	cluster.StepGC()

	// The partition heals. Site 6's obsolete copy tries to spread back —
	// the paper's "resurrection" hazard. A dormant certificate at a
	// retention site awakens (activation timestamp advances) and cancels
	// it everywhere.
	cluster.SetPartition(6, false)
	cluster.RunAntiEntropyToConsistency(200)
	fmt.Printf("after heal: %d/%d sites agree the item is gone (resurrection prevented)\n",
		cluster.CountDeleted("service/mail"), cluster.N())
	return nil
}

func lookup(c *epidemic.Cluster, site int) string {
	v, ok := c.Node(site).Lookup("service/mail")
	if !ok {
		return "<deleted>"
	}
	return string(v)
}
