// Spatialnodes: deploy a §3 spatial distribution on *real* replica nodes.
// Twelve replicas sit on a line; each node derives per-peer weights from
// the paper's equation (3.1.1) with a=2 and installs them with
// SetPeersWeighted, so anti-entropy conversations favour nearby neighbours
// — the configuration that fixed the Xerox Corporate Internet.
package main

import (
	"fmt"
	"log"

	"epidemic"
)

const n = 12

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	line, err := epidemic.NewLineNetwork(n)
	if err != nil {
		return err
	}
	sel, err := epidemic.NewSpatialSelector(line, epidemic.FormPaper, 2)
	if err != nil {
		return err
	}

	clock := epidemic.NewSimulatedClock(1)
	nodes := make([]*epidemic.Node, n)
	for i := range nodes {
		nodes[i], err = epidemic.NewNode(epidemic.NodeConfig{
			Site:  epidemic.SiteID(i),
			Clock: clock.ClockAt(epidemic.SiteID(i)),
			Seed:  int64(i) + 1,
		})
		if err != nil {
			return err
		}
	}
	// Wire each node with weights from the spatial distribution.
	for i, nd := range nodes {
		probs := epidemic.SelectorProbabilities(sel, i)
		var peers []epidemic.Peer
		var weights []float64
		for j, target := range nodes {
			if j == i {
				continue
			}
			peers = append(peers, epidemic.NewLocalPeer(target, int64(i*n+j)))
			weights = append(weights, probs[j])
		}
		if err := nd.SetPeersWeighted(peers, weights); err != nil {
			return err
		}
	}

	fmt.Printf("site 0's selection probabilities by distance: p(1)=%.2f p(2)=%.2f p(11)=%.4f\n",
		epidemic.SelectorProbabilities(sel, 0)[1],
		epidemic.SelectorProbabilities(sel, 0)[2],
		epidemic.SelectorProbabilities(sel, 0)[11])

	// Inject at one end and run anti-entropy rounds; with the spatial
	// distribution the update walks the line mostly hop by hop.
	nodes[0].Update("config/version", epidemic.Value("v7"))
	for round := 1; round <= 60; round++ {
		for _, nd := range nodes {
			if err := nd.StepAntiEntropy(); err != nil {
				return err
			}
		}
		clock.Advance(1)
		have := 0
		for _, nd := range nodes {
			if _, ok := nd.Lookup("config/version"); ok {
				have++
			}
		}
		if round <= 6 || have == n {
			fmt.Printf("round %2d: %2d/%d replicas have the update\n", round, have, n)
		}
		if have == n {
			break
		}
	}
	return nil
}
