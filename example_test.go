package epidemic_test

import (
	"fmt"
	"math/rand"

	"epidemic"
)

// ExampleNewCluster shows the basic lifecycle: write at one replica,
// gossip, read everywhere, delete.
func ExampleNewCluster() {
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:    6,
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	cluster.Node(0).Update("motd", epidemic.Value("hello, epidemics"))
	cluster.RunRumorToQuiescence(100)
	cluster.RunAntiEntropyToConsistency(100)

	v, ok := cluster.Node(5).Lookup("motd")
	fmt.Println(string(v), ok)

	cluster.Node(3).Delete("motd")
	cluster.RunAntiEntropyToConsistency(100)
	_, ok = cluster.Node(0).Lookup("motd")
	fmt.Println(ok)
	// Output:
	// hello, epidemics true
	// false
}

// ExampleSpreadRumor reproduces one Table 1 cell: push rumor mongering
// with feedback and counter k=2 on 1000 sites.
func ExampleSpreadRumor() {
	cfg := epidemic.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: epidemic.Push}
	sel, err := epidemic.NewUniformSelector(1000)
	if err != nil {
		panic(err)
	}
	r, err := epidemic.SpreadRumor(cfg, sel, 0, rand.New(rand.NewSource(42)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("residue within Table 1 range: %v\n", r.Residue < 0.1)
	fmt.Printf("traffic within Table 1 range: %v\n", r.Traffic > 2.5 && r.Traffic < 4.0)
	// Output:
	// residue within Table 1 range: true
	// traffic within Table 1 range: true
}

// ExampleResolveDifference runs one anti-entropy conversation between two
// replicas using the peel-back comparison (§1.3).
func ExampleResolveDifference() {
	clock := epidemic.NewSimulatedClock(1)
	a := epidemic.NewStore(1, clock.ClockAt(1))
	b := epidemic.NewStore(2, clock.ClockAt(2))
	a.Update("k", epidemic.Value("v"))

	stats, err := epidemic.ResolveDifference(epidemic.ResolveConfig{
		Mode:     epidemic.PushPull,
		Strategy: epidemic.ComparePeelBack,
	}, a, b)
	if err != nil {
		panic(err)
	}
	v, _ := b.Lookup("k")
	fmt.Println(string(v), stats.EntriesApplied)
	// Output:
	// v 1
}

// ExampleNewSpatialSelector builds the distribution deployed on the Xerox
// Corporate Internet — equation (3.1.1) with a = 2 — and inspects how
// strongly it favours the nearest neighbour on a line.
func ExampleNewSpatialSelector() {
	line, err := epidemic.NewLineNetwork(50)
	if err != nil {
		panic(err)
	}
	sel, err := epidemic.NewSpatialSelector(line, epidemic.FormPaper, 2)
	if err != nil {
		panic(err)
	}
	p := epidemic.SelectorProbabilities(sel, 0)
	fmt.Printf("nearest neighbour gets > half the mass: %v\n", p[1] > 0.5)
	fmt.Printf("distance 49 gets < 0.1%%: %v\n", p[49] < 0.001)
	// Output:
	// nearest neighbour gets > half the mass: true
	// distance 49 gets < 0.1%: true
}
