package epidemic_test

import (
	"math/rand"
	"testing"

	"epidemic"
)

// The facade tests double as integration tests of the whole stack through
// the public API only.

func TestFacadeClusterEndToEnd(t *testing.T) {
	cluster, err := epidemic.NewCluster(epidemic.ClusterConfig{
		N:              10,
		Rumor:          epidemic.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Redistribution: epidemic.RedistributeRumor,
		Tau1:           1000,
		Tau2:           1000,
		RetentionCount: 2,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Node(0).Update("name/alice", epidemic.Value("addr:1"))
	cluster.RunRumorToQuiescence(100)
	if _, ok := cluster.RunAntiEntropyToConsistency(100); !ok {
		t.Fatal("cluster never converged")
	}
	for i := 0; i < cluster.N(); i++ {
		v, ok := cluster.Node(i).Lookup("name/alice")
		if !ok || string(v) != "addr:1" {
			t.Fatalf("node %d: %q %v", i, v, ok)
		}
	}
	// Delete and verify it sticks everywhere.
	cluster.Node(4).Delete("name/alice")
	cluster.RunAntiEntropyToConsistency(100)
	if got := cluster.CountDeleted("name/alice"); got != cluster.N() {
		t.Fatalf("deleted at %d/%d", got, cluster.N())
	}
}

func TestFacadeSpreadSimulators(t *testing.T) {
	sel, err := epidemic.NewUniformSelector(500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r, err := epidemic.SpreadRumor(epidemic.DefaultRumorConfig(), sel, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Traffic <= 0 {
		t.Error("no traffic")
	}
	ae, err := epidemic.SpreadAntiEntropy(epidemic.AntiEntropyConfig{Mode: epidemic.PushPull}, sel, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !ae.Converged {
		t.Error("anti-entropy did not converge")
	}
}

func TestFacadeSpatialOnCIN(t *testing.T) {
	cin, err := epidemic.NewCIN()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := epidemic.NewSpatialSelector(cin.Network, epidemic.FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	r, err := epidemic.SpreadAntiEntropy(epidemic.AntiEntropyConfig{Mode: epidemic.PushPull}, sel, 0, rng,
		epidemic.WithLinkAccounting(cin.Network))
	if err != nil {
		t.Fatal(err)
	}
	if r.CompareLoad.GetNamed(epidemic.BusheyLinkName) < 0 {
		t.Error("no Bushey accounting")
	}
}

func TestFacadeTCP(t *testing.T) {
	src := epidemic.NewSimulatedClock(1 << 30)
	a, err := epidemic.NewNode(epidemic.NodeConfig{
		Site: 1, Clock: src.ClockAt(1),
		Resolve: epidemic.ResolveConfig{Mode: epidemic.PushPull, Strategy: epidemic.CompareRecent, Tau: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epidemic.NewNode(epidemic.NodeConfig{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := epidemic.ServeTCP(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	a.SetPeers([]epidemic.Peer{epidemic.NewTCPPeer(2, srv.Addr())})
	a.Update("k", epidemic.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("k"); !ok {
		t.Fatal("TCP anti-entropy failed through facade")
	}
}

func TestFacadeStoreAndResolve(t *testing.T) {
	src := epidemic.NewSimulatedClock(1)
	a := epidemic.NewStore(1, src.ClockAt(1))
	b := epidemic.NewStore(2, src.ClockAt(2))
	a.Update("k", epidemic.Value("v"))
	st, err := epidemic.ResolveDifference(epidemic.ResolveConfig{
		Mode: epidemic.PushPull, Strategy: epidemic.ComparePeelBack,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesApplied == 0 {
		t.Error("nothing applied")
	}
	if _, ok := b.Lookup("k"); !ok {
		t.Error("resolve failed")
	}
}

func TestFacadeNetworks(t *testing.T) {
	if _, err := epidemic.NewLineNetwork(5); err != nil {
		t.Error(err)
	}
	if _, err := epidemic.NewMeshNetwork(3, 3); err != nil {
		t.Error(err)
	}
	if epidemic.WallClock(1) == nil {
		t.Error("nil clock")
	}
}

func TestFacadeMembershipDiscovery(t *testing.T) {
	src := epidemic.NewSimulatedClock(1 << 30)
	mk := func(site epidemic.SiteID) (*epidemic.Node, *epidemic.TCPServer) {
		n, err := epidemic.NewNode(epidemic.NodeConfig{
			Site: site, Clock: src.ClockAt(site),
			Resolve: epidemic.ResolveConfig{Mode: epidemic.PushPull, Strategy: epidemic.CompareRecent, Tau: 1 << 40},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := epidemic.ServeTCP(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		return n, srv
	}
	a, sa := mk(1)
	b, sb := mk(2)
	c, sc := mk(3)

	// Everyone announces itself; b and c only seed-peer with a.
	for _, nd := range []struct {
		n   *epidemic.Node
		srv *epidemic.TCPServer
	}{{a, sa}, {b, sb}, {c, sc}} {
		if _, err := epidemic.Announce(nd.n, nd.srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	b.SetPeers([]epidemic.Peer{epidemic.NewTCPPeer(1, sa.Addr())})
	c.SetPeers([]epidemic.Peer{epidemic.NewTCPPeer(1, sa.Addr())})
	a.SetPeers([]epidemic.Peer{epidemic.NewTCPPeer(2, sb.Addr())})

	// A few anti-entropy rounds spread the directory everywhere.
	for i := 0; i < 6; i++ {
		for _, n := range []*epidemic.Node{a, b, c} {
			if err := n.StepAntiEntropy(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := len(epidemic.Members(c.Store())); got != 3 {
		t.Fatalf("c sees %d members, want 3", got)
	}
	// c syncs peers from the directory: now it knows a AND b.
	used := epidemic.SyncPeers(c, func(rec epidemic.MemberRecord) epidemic.Peer {
		return epidemic.NewTCPPeer(rec.Site, rec.Addr)
	})
	if len(used) != 2 {
		t.Fatalf("synced %d peers, want 2", len(used))
	}
	// Updates now reach c through discovered peers.
	b.Update("via-directory", epidemic.Value("yes"))
	for i := 0; i < 6; i++ {
		if err := c.StepAntiEntropy(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Lookup("via-directory"); !ok {
		t.Fatal("discovered peers not usable")
	}
	// Removing a site spreads as a death certificate. Advance the clock
	// so the certificate's timestamp exceeds the announcement's.
	src.Advance(10)
	epidemic.RemoveMember(a, 2)
	for i := 0; i < 6; i++ {
		for _, n := range []*epidemic.Node{a, b, c} {
			_ = n.StepAntiEntropy()
		}
	}
	if got := len(epidemic.Members(c.Store())); got != 2 {
		t.Fatalf("after removal c sees %d members, want 2", got)
	}
}
