// Package epidemic is a Go implementation of the randomized algorithms of
// Demers et al., "Epidemic Algorithms for Replicated Database Maintenance"
// (PODC 1987): direct mail, anti-entropy, and rumor mongering for driving
// a database replicated at many sites toward eventual consistency, plus
// deletion via (dormant) death certificates and nonuniform spatial
// distributions for partner selection.
//
// The package is a facade over the implementation packages:
//
//   - Node / NodeConfig — a replica runtime: client Update/Delete/Lookup,
//     periodic anti-entropy, rumor mongering of hot updates, and
//     death-certificate garbage collection.
//   - Cluster — an in-memory cluster of nodes on a simulated clock, driven
//     in deterministic cycles (ideal for tests and experiments).
//   - ServeTCP / NewTCPPeer — gossip between real processes over TCP.
//   - SpreadRumor / SpreadAntiEntropy — the abstract single-update spread
//     simulators behind every table and figure in the paper.
//   - NewUniformSelector / NewSpatialSelector — partner-selection
//     distributions, including the paper's equation (3.1.1).
//
// Quick start:
//
//	cluster, _ := epidemic.NewCluster(epidemic.ClusterConfig{N: 8, Seed: 1})
//	cluster.Node(0).Update("user/alice", epidemic.Value("MV:1.17#42"))
//	cluster.RunRumorToQuiescence(100)
//	cluster.RunAntiEntropyToConsistency(100)
//	v, ok := cluster.Node(7).Lookup("user/alice")
package epidemic

import (
	"io"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/history"
	"epidemic/internal/obs/trace"
	"epidemic/internal/sim"
	"epidemic/internal/spatial"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
	"epidemic/internal/topology"
	"epidemic/internal/transport"
)

// Re-exported core types. These are aliases, so values flow freely between
// the facade and the implementation packages.
type (
	// SiteID identifies a database replica.
	SiteID = timestamp.SiteID
	// Timestamp is a globally unique, totally ordered timestamp.
	Timestamp = timestamp.T
	// Clock issues timestamps for one site.
	Clock = timestamp.Clock
	// SimulatedClock is a manually advanced time source for deterministic
	// runs.
	SimulatedClock = timestamp.Simulated

	// Value is a database value; nil means deleted.
	Value = store.Value
	// Entry is a (key, value, timestamp) triple, possibly a death
	// certificate.
	Entry = store.Entry
	// Store is one replica's database.
	Store = store.Store

	// Mode selects push, pull, or push-pull exchanges.
	Mode = core.Mode
	// RumorConfig selects a rumor-mongering variant (§1.4 of the paper).
	RumorConfig = core.RumorConfig
	// AntiEntropyConfig configures the anti-entropy spread simulator.
	AntiEntropyConfig = core.AntiEntropyConfig
	// ResolveConfig configures database-level anti-entropy conversations.
	ResolveConfig = core.ResolveConfig
	// CompareStrategy selects full / checksum / recent-list / peel-back
	// database comparison (§1.3).
	CompareStrategy = core.CompareStrategy
	// Redistribution selects the §1.5 policy for repaired updates.
	Redistribution = core.Redistribution
	// SpreadResult reports residue / traffic / delay for one spread.
	SpreadResult = core.SpreadResult
	// ExchangeStats reports one anti-entropy conversation's work.
	ExchangeStats = core.ExchangeStats

	// Node is a replica runtime.
	Node = node.Node
	// NodeConfig configures a Node.
	NodeConfig = node.Config
	// NodeStats counts a node's protocol activity.
	NodeStats = node.Stats
	// Peer is a remote replica as seen from one node.
	Peer = node.Peer
	// LocalPeer is an in-process Peer with failure injection.
	LocalPeer = node.LocalPeer
	// OutboxConfig tunes the asynchronous outbound mail engine
	// (NodeConfig.Outbox): worker count, per-peer queue bound, retry
	// backoff, and the shutdown flush timeout. Workers < 0 restores
	// serial direct mail.
	OutboxConfig = node.OutboxConfig
	// MailBatch is one outbound-queue drain: coalesced entries for a
	// single peer, shipped in one frame when the peer supports it.
	MailBatch = node.MailBatch
	// BatchMailer is the optional Peer extension for delivering a whole
	// MailBatch in one call (TCPPeer implements it on codec v5 sessions).
	BatchMailer = node.BatchMailer

	// Cluster is an in-memory cluster on a simulated clock.
	Cluster = sim.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = sim.ClusterConfig

	// Selector picks random exchange partners.
	Selector = spatial.Selector
	// SpatialForm identifies a spatial distribution family (§3).
	SpatialForm = spatial.Form

	// Network is a topology with sites placed on it.
	Network = topology.Network
	// CIN is the synthetic Xerox Corporate Internet topology.
	CIN = topology.CIN

	// TCPServer exposes a node over TCP.
	TCPServer = transport.Server
	// TCPServerOptions tunes a TCPServer's codec ceiling and UDP fast path.
	TCPServerOptions = transport.ServerOptions
	// TCPPeer is a Peer over TCP.
	TCPPeer = transport.TCPPeer
	// TCPPeerOptions tunes a TCPPeer's connection pool, per-request
	// deadline, peel-back budget, wire codec, and UDP fast path.
	TCPPeerOptions = transport.PeerOptions
	// WireStats aggregates client-side pool and wire-traffic counters,
	// typically shared by every TCPPeer a process dials.
	WireStats = transport.WireStats
	// WireSnapshot is a point-in-time copy of WireStats.
	WireSnapshot = transport.WireSnapshot

	// NodeEvent is one observable node action, delivered to the observer
	// installed with Node.SetOnEvent.
	NodeEvent = node.Event
	// MetricsRegistry collects counters, gauges and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value label on a metric series.
	MetricLabel = obs.Label
	// Histogram is a metrics histogram with fixed upper bounds.
	Histogram = obs.Histogram
	// EventRing is the bounded buffer of recent node events behind the
	// admin /events endpoint.
	EventRing = obs.EventRing
	// EventRecord is one node event in wire-friendly form.
	EventRecord = obs.EventRecord
	// PropagationTracker derives the paper's t_last / t_avg / residue from
	// per-update infection timestamps.
	PropagationTracker = obs.Propagation
	// ObserveOptions configures InstrumentNode.
	ObserveOptions = obs.ObserveOptions

	// Tracer records per-update hop spans at one replica; enable it with
	// NodeConfig.TraceRing. A nil *Tracer is valid and disables tracing.
	Tracer = trace.Tracer
	// TraceSpan is one hop of one update's propagation.
	TraceSpan = trace.Span
	// TraceHop is the compact provenance envelope exchange payloads carry
	// alongside each entry.
	TraceHop = trace.Hop
	// TraceMechanism identifies which epidemic process delivered an update.
	TraceMechanism = trace.Mechanism
	// TraceDump is one replica's span report, as served by gossipd's TRACE
	// verb and /trace admin route.
	TraceDump = trace.Dump
	// InfectionTree is the reconstructed propagation tree of one update.
	InfectionTree = trace.Tree
	// InfectionTreeNode is one site's position in an InfectionTree.
	InfectionTreeNode = trace.TreeNode
	// TraceSummary packages a traced update's convergence observables
	// (t_last, t_avg, residue, hop histogram, mechanism counts).
	TraceSummary = trace.Summary

	// ClusterDigest is one replica's compact health snapshot, spread
	// epidemically by piggybacking on gossip exchanges.
	ClusterDigest = cluster.Digest
	// ClusterDirectory holds one replica's view of every site's digest
	// (newest-stamp-wins merge). A nil *ClusterDirectory is valid and
	// disables the observatory. Set it as NodeConfig.Digests and
	// TCPPeerOptions.Digests.
	ClusterDirectory = cluster.Directory
	// ClusterLatencySummary is a digest's per-mechanism exchange-latency
	// quantile pair.
	ClusterLatencySummary = cluster.LatencySummary
	// ClusterStall is one convergence problem the stall detector flagged.
	ClusterStall = cluster.Stall
	// ClusterStallConfig tunes the stall detector's windows.
	ClusterStallConfig = cluster.StallConfig
	// ClusterStallDetector turns a digest view into convergence stalls.
	ClusterStallDetector = cluster.StallDetector
	// ClusterSiteStatus is one digest decorated with reader-side staleness.
	ClusterSiteStatus = cluster.SiteStatus
	// ClusterStatusReply is the /cluster response body: one replica's view
	// of the whole cluster plus the stalls it detects.
	ClusterStatusReply = cluster.StatusReply
	// ClusterTrends is the history-derived rates-and-trajectories block a
	// /cluster reply (and STATSJSON) carries when the telemetry sampler is
	// running.
	ClusterTrends = cluster.Trends
	// ClusterEdgeTracker reduces level-triggered stall lists to rising
	// edges — exactly one trigger per distinct (site, reason) incident.
	ClusterEdgeTracker = cluster.EdgeTracker

	// MetricSeriesView is one registered series as seen by
	// MetricsRegistry.VisitSeries.
	MetricSeriesView = obs.SeriesView
	// HistorySampler records every registered metric into bounded on-node
	// ring-buffer time series with windowed Rate/Delta/MinMax queries.
	HistorySampler = history.Sampler
	// HistoryConfig shapes a HistorySampler (step, retention, stamp scale,
	// histogram quantiles).
	HistoryConfig = history.Config
	// HistoryPoint is one retained sample: stamp plus value.
	HistoryPoint = history.Point
	// FlightRecorder captures correlated anomaly snapshots (events, spans,
	// time series, digests, wire stats) into a bounded on-disk dump dir.
	FlightRecorder = history.Recorder
	// FlightDumpMeta describes one flight dump on disk.
	FlightDumpMeta = history.DumpMeta
)

// Metric names registered by InstrumentNode (and, for the transport pair,
// by the gossipd admin wiring).
const (
	MetricUpdatesAccepted     = obs.MetricUpdatesAccepted
	MetricMailSent            = obs.MetricMailSent
	MetricMailFailures        = obs.MetricMailFailures
	MetricAntiEntropyRuns     = obs.MetricAntiEntropyRuns
	MetricRumorRounds         = obs.MetricRumorRounds
	MetricEntriesSent         = obs.MetricEntriesSent
	MetricEntriesReceived     = obs.MetricEntriesReceived
	MetricEntriesApplied      = obs.MetricEntriesApplied
	MetricFullCompares        = obs.MetricFullCompares
	MetricRedistributed       = obs.MetricRedistributed
	MetricCertificatesExpired = obs.MetricCertificatesExpired
	MetricUpdatePropagation   = obs.MetricUpdatePropagation
	MetricPropagationTracked  = obs.MetricPropagationTracked
	MetricHotRumors           = obs.MetricHotRumors
	MetricPeers               = obs.MetricPeers
	MetricStoreKeys           = obs.MetricStoreKeys
	MetricStoreShards         = obs.MetricStoreShards
	MetricOutboxEnqueued      = obs.MetricOutboxEnqueued
	MetricOutboxCoalesced     = obs.MetricOutboxCoalesced
	MetricOutboxDropped       = obs.MetricOutboxDropped
	MetricOutboxBatches       = obs.MetricOutboxBatches
	MetricOutboxQueueDepth    = obs.MetricOutboxQueueDepth
	MetricMailBatchesReceived = obs.MetricMailBatchesReceived
	MetricTransportRequests   = obs.MetricTransportRequests
	MetricTransportSeconds    = obs.MetricTransportSeconds
	MetricExchangeSeconds     = obs.MetricExchangeSeconds
	MetricClusterSites        = obs.MetricClusterSites
	MetricClusterStaleSites   = obs.MetricClusterStaleSites
	MetricClusterStalls       = obs.MetricClusterStalls
	MetricClusterResidue      = obs.MetricClusterResidue
)

// Stall reasons reported by the ClusterStallDetector, and the pseudo-site
// marking a cluster-wide stall.
const (
	StallStaleDigest      = cluster.ReasonStaleDigest
	StallResidueStuck     = cluster.ReasonResidueStuck
	StallChecksumMismatch = cluster.ReasonChecksumMismatch
	StallClusterWide      = cluster.ClusterWide
)

// DefaultDigestShareLimit caps the digests piggybacked per exchange when
// NewClusterDirectory is given a limit <= 0.
const DefaultDigestShareLimit = cluster.DefaultShareLimit

// NewClusterDirectory builds a digest directory for one replica. Wire it
// into NodeConfig.Digests (server side) and TCPPeerOptions.Digests
// (client side) and digests ride every gossip exchange for free.
func NewClusterDirectory(self SiteID, shareLimit int) *ClusterDirectory {
	return cluster.NewDirectory(int32(self), shareLimit)
}

// NewClusterStallDetector builds a convergence stall detector; feed it the
// same directory's Snapshot on a fixed cadence.
func NewClusterStallDetector(cfg ClusterStallConfig) *ClusterStallDetector {
	return cluster.NewStallDetector(cfg)
}

// BuildClusterStatus assembles the /cluster response shape from a digest
// view at time now (stamp units); staleAfter is the staleness window in
// stamp units and secondsPerUnit the stamp-to-seconds scale (0 = 1e-9).
func BuildClusterStatus(self SiteID, now int64, digests []ClusterDigest, stalls []ClusterStall, staleAfter int64, secondsPerUnit float64) ClusterStatusReply {
	return cluster.BuildStatus(int32(self), now, digests, stalls, staleAfter, secondsPerUnit)
}

// NewClusterEdgeTracker builds an edge tracker; feed it every stall
// detector pass and act only on the rising edges it returns.
func NewClusterEdgeTracker() *ClusterEdgeTracker { return cluster.NewEdgeTracker() }

// NewHistorySampler builds a metric time-series sampler over a registry.
// Drive it with Sample (deterministic stamps) or Run (wall clock).
func NewHistorySampler(reg *MetricsRegistry, cfg HistoryConfig) *HistorySampler {
	return history.New(reg, cfg)
}

// NewFlightRecorder builds an anomaly flight recorder dumping into dir,
// keeping at most max dumps (<= 0 selects the default bound).
func NewFlightRecorder(dir string, max int) (*FlightRecorder, error) {
	return history.NewRecorder(dir, max)
}

// Metric names registered by InstrumentWire for the client-side wire
// protocol (connection pool and per-exchange traffic).
const (
	MetricWireDials               = obs.MetricWireDials
	MetricWireRedials             = obs.MetricWireRedials
	MetricWireReuses              = obs.MetricWireReuses
	MetricWireOpenConns           = obs.MetricWireOpenConns
	MetricWireBytesSent           = obs.MetricWireBytesSent
	MetricWireBytesReceived       = obs.MetricWireBytesReceived
	MetricWireExchanges           = obs.MetricWireExchanges
	MetricWireEntriesPerExchange  = obs.MetricWireEntriesPerExchange
	MetricWireBytesPerExchange    = obs.MetricWireBytesPerExchange
	MetricWireSessionsGob         = obs.MetricWireSessionsGob
	MetricWireSessionsBinary      = obs.MetricWireSessionsBinary
	MetricWireMsgsGob             = obs.MetricWireMsgsGob
	MetricWireMsgsBinary          = obs.MetricWireMsgsBinary
	MetricWireShardVecExchanges   = obs.MetricWireShardVecExchanges
	MetricWireShardVecShards      = obs.MetricWireShardVecShards
	MetricWireShardVecDowngrades  = obs.MetricWireShardVecDowngrades
	MetricWireMailBatches         = obs.MetricWireMailBatches
	MetricWireMailBatchEntries    = obs.MetricWireMailBatchEntries
	MetricWireMailFallbackEntries = obs.MetricWireMailFallbackEntries
	MetricWireUDPPushes           = obs.MetricWireUDPPushes
	MetricWireUDPRetries          = obs.MetricWireUDPRetries
	MetricWireUDPFallbacks        = obs.MetricWireUDPFallbacks
	MetricWireUDPOversize         = obs.MetricWireUDPOversize
	MetricWireUDPBytesSent        = obs.MetricWireUDPBytesSent
	MetricWireUDPBytesReceived    = obs.MetricWireUDPBytesReceived
)

// Exchange modes.
const (
	Push     = core.Push
	Pull     = core.Pull
	PushPull = core.PushPull
)

// Comparison strategies (§1.3).
const (
	CompareFull        = core.CompareFull
	CompareChecksum    = core.CompareChecksum
	CompareRecent      = core.CompareRecent
	ComparePeelBack    = core.ComparePeelBack
	CompareShardVector = core.CompareShardVector
)

// Redistribution policies (§1.5).
const (
	RedistributeNone  = core.RedistributeNone
	RedistributeMail  = core.RedistributeMail
	RedistributeRumor = core.RedistributeRumor
)

// Node event kinds (NodeEvent.Kind), for observers chained around
// InstrumentNode's callback.
const (
	NodeEventAntiEntropy  = node.EventAntiEntropy
	NodeEventRumor        = node.EventRumor
	NodeEventRedistribute = node.EventRedistribute
	NodeEventGC           = node.EventGC
	NodeEventMailFailed   = node.EventMailFailed
	NodeEventUpdate       = node.EventUpdate
	NodeEventApply        = node.EventApply
)

// Spatial distribution families (§3).
const (
	FormUniform  = spatial.FormUniform
	FormDistance = spatial.FormDistance
	FormQ        = spatial.FormQ
	FormPaper    = spatial.FormPaper
)

// HuntUnlimited makes a connection-limited sender hunt until it finds an
// open partner.
const HuntUnlimited = core.HuntUnlimited

// Trace mechanisms: which epidemic process delivered an update to a
// replica.
const (
	MechUnknown     = trace.MechUnknown
	MechOrigin      = trace.MechOrigin
	MechDirectMail  = trace.MechDirectMail
	MechRumorPush   = trace.MechRumorPush
	MechRumorPull   = trace.MechRumorPull
	MechAntiEntropy = trace.MechAntiEntropy
	MechPeelBack    = trace.MechPeelBack
)

// TraceHopUnknown is the hop count of a span whose causal distance from
// the origin could not be established.
const TraceHopUnknown = trace.HopUnknown

// DefaultTraceRing is the span ring capacity selected by NewTracer (and
// NodeConfig.TraceRing values <= 0 passed to it).
const DefaultTraceRing = trace.DefaultRingSize

// NewTracer builds a standalone hop-span tracer for one site (most users
// set NodeConfig.TraceRing and let the node own it).
func NewTracer(site SiteID, capacity int) *Tracer { return trace.NewTracer(site, capacity) }

// AssembleTrace reconstructs the infection tree for key from spans
// federated across any number of replicas (see Tracer and gossipctl
// trace).
func AssembleTrace(key string, spans []TraceSpan) *InfectionTree {
	return trace.Assemble(key, spans)
}

// NewNode builds a replica runtime. See NodeConfig for the knobs; zero
// values select the paper-recommended defaults (push-pull peel-back
// anti-entropy, rumor redistribution).
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// NewLocalPeer wraps an in-process node as a Peer.
func NewLocalPeer(target *Node, seed int64) *LocalPeer { return node.NewLocalPeer(target, seed) }

// NewCluster builds a fully connected in-memory cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return sim.NewCluster(cfg) }

// ServeTCP exposes a node to remote peers on addr (":0" for ephemeral),
// serving every codec and the UDP rumor fast path.
func ServeTCP(n *Node, addr string) (*TCPServer, error) { return transport.Serve(n, addr) }

// ServeTCPWith exposes a node with an explicit codec ceiling and UDP
// policy (the mixed-version rollout knobs).
func ServeTCPWith(n *Node, addr string, opts TCPServerOptions) (*TCPServer, error) {
	return transport.ServeWith(n, addr, opts)
}

// NewTCPPeer addresses a remote replica by site ID and "host:port" with
// default pool and peel-back options.
func NewTCPPeer(id SiteID, addr string) *TCPPeer { return transport.NewTCPPeer(id, addr) }

// NewTCPPeerWith addresses a remote replica with explicit pool, deadline
// and peel-back options.
func NewTCPPeerWith(id SiteID, addr string, opts TCPPeerOptions) *TCPPeer {
	return transport.NewTCPPeerWith(id, addr, opts)
}

// NewStore builds a bare replica store (most users want NewNode instead).
func NewStore(site SiteID, clock Clock) *Store { return store.New(site, clock) }

// NewShardedStore builds a bare replica store with an explicit lock-stripe
// count (rounded up to a power of two; <= 0 selects DefaultStoreShards).
func NewShardedStore(site SiteID, clock Clock, shards int) *Store {
	return store.NewSharded(site, clock, shards)
}

// DefaultStoreShards is the store's default lock-stripe count.
const DefaultStoreShards = store.DefaultShards

// NewSimulatedClock builds a shared simulated time source.
func NewSimulatedClock(start int64) *SimulatedClock { return timestamp.NewSimulated(start) }

// WallClock builds a real-time clock for one site.
func WallClock(site SiteID) Clock { return timestamp.WallClock(site) }

// DefaultRumorConfig is the paper's baseline rumor variant.
func DefaultRumorConfig() RumorConfig { return core.DefaultRumorConfig() }

// ResolveDifference runs one anti-entropy conversation between two stores.
func ResolveDifference(cfg ResolveConfig, s, p *Store) (ExchangeStats, error) {
	return core.ResolveDifference(cfg, s, p)
}

// NewUniformSelector selects partners uniformly among n sites. It
// returns an error when n < 2, since a single site has no possible
// partner (Pick would otherwise have to invent one).
func NewUniformSelector(n int) (Selector, error) { return spatial.NewUniform(n) }

// NewSpatialSelector builds a nonuniform partner-selection distribution
// over a network (§3). Use FormPaper with a=2 for the distribution
// deployed on the Xerox Corporate Internet.
func NewSpatialSelector(nw *Network, form SpatialForm, a float64) (Selector, error) {
	return spatial.New(nw, form, a)
}

// SelectorProbabilities returns site i's full partner distribution (index
// = site, self = 0). Use it to derive per-peer weights for
// Node.SetPeersWeighted when deploying a spatial distribution on real
// nodes.
func SelectorProbabilities(sel Selector, i int) []float64 {
	return spatial.Probabilities(sel, i)
}

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventRing builds a bounded event buffer holding the last capacity
// records (a default size when capacity <= 0).
func NewEventRing(capacity int) *EventRing { return obs.NewEventRing(capacity) }

// NewPropagationTracker builds a per-update infection tracker.
// secondsPerUnit scales timestamp units to seconds (1e-9 for wall-clock
// nanoseconds, 1 to treat simulated ticks as seconds); hist, when non-nil,
// receives one observation per new infection.
func NewPropagationTracker(secondsPerUnit float64, hist *Histogram) *PropagationTracker {
	return obs.NewPropagation(secondsPerUnit, hist)
}

// InstrumentNode registers n's counters and gauges on reg and returns the
// event observer that completes the bridge; install it with n.SetOnEvent.
func InstrumentNode(reg *MetricsRegistry, n *Node, opts ObserveOptions) func(NodeEvent) {
	return obs.InstrumentNode(reg, n, opts)
}

// InstrumentWire registers ws's pool and traffic counters on reg and
// installs the exchange observer feeding the per-exchange histograms.
func InstrumentWire(reg *MetricsRegistry, ws *WireStats) { obs.InstrumentWire(reg, ws) }

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4), returning the first problem found.
func ValidateExposition(r io.Reader) error { return obs.ValidateExposition(r) }

// NewCIN builds the synthetic Xerox Corporate Internet topology used by
// the Table 4/5 reproductions.
func NewCIN() (*CIN, error) { return topology.NewCIN() }

// NewLineNetwork builds a linear network of n sites (§3's introductory
// topology).
func NewLineNetwork(n int) (*Network, error) { return topology.Line(n) }

// NewMeshNetwork builds a D-dimensional rectilinear mesh of sites.
func NewMeshNetwork(dims ...int) (*Network, error) { return topology.Mesh(dims...) }
