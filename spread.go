package epidemic

import (
	"math/rand"

	"epidemic/internal/core"
	"epidemic/internal/topology"
)

// SpreadOption configures a spread simulation.
type SpreadOption = core.SpreadOption

// WithLinkAccounting charges every conversation and update transfer to the
// links it traverses, producing the per-link traffic of Tables 4 and 5.
func WithLinkAccounting(nw *Network) SpreadOption { return core.WithLinkAccounting(nw) }

// SpreadRumor simulates rumor mongering (§1.4) for a single update
// injected at origin, in synchronous cycles, until no site remains
// infective. It returns the paper's residue / traffic / delay metrics.
func SpreadRumor(cfg RumorConfig, sel Selector, origin int, rng *rand.Rand, opts ...SpreadOption) (SpreadResult, error) {
	return core.SpreadRumor(cfg, sel, origin, rng, opts...)
}

// SpreadAntiEntropy simulates anti-entropy (§1.3) distributing a single
// update until every site has it.
func SpreadAntiEntropy(cfg AntiEntropyConfig, sel Selector, origin int, rng *rand.Rand, opts ...SpreadOption) (SpreadResult, error) {
	return core.SpreadAntiEntropy(cfg, sel, origin, rng, opts...)
}

// BusheyLinkName names the synthetic CIN's primary transatlantic link for
// LinkLoad lookups.
const BusheyLinkName = topology.BusheyLinkName
